#include "bdd/bdd.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace apc::bdd {

namespace {
constexpr std::size_t kInitialBuckets = 1 << 12;
constexpr std::size_t kCacheSize = 1 << 17;  // direct-mapped, power of two

std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}
}  // namespace

// ---------- Bdd handle ----------

Bdd::Bdd(BddManager* mgr, NodeRef ref) : mgr_(mgr), ref_(ref) {}

Bdd::Bdd(const Bdd& other) : mgr_(other.mgr_), ref_(other.ref_) {
  if (mgr_) mgr_->inc_ref(ref_);
}

Bdd::Bdd(Bdd&& other) noexcept : mgr_(other.mgr_), ref_(other.ref_) {
  other.mgr_ = nullptr;
  other.ref_ = kFalse;
}

Bdd& Bdd::operator=(const Bdd& other) {
  if (this == &other) return *this;
  if (other.mgr_) other.mgr_->inc_ref(other.ref_);
  if (mgr_) mgr_->dec_ref(ref_);
  mgr_ = other.mgr_;
  ref_ = other.ref_;
  return *this;
}

Bdd& Bdd::operator=(Bdd&& other) noexcept {
  if (this == &other) return *this;
  if (mgr_) mgr_->dec_ref(ref_);
  mgr_ = other.mgr_;
  ref_ = other.ref_;
  other.mgr_ = nullptr;
  other.ref_ = kFalse;
  return *this;
}

Bdd::~Bdd() {
  if (mgr_) mgr_->dec_ref(ref_);
}

Bdd Bdd::operator&(const Bdd& other) const {
  require(mgr_ && mgr_ == other.mgr_, "Bdd::operator& across managers");
  Bdd out = mgr_->wrap(mgr_->apply(BddManager::Op::And, ref_, other.ref_));
  mgr_->maybe_gc();
  return out;
}

Bdd Bdd::operator|(const Bdd& other) const {
  require(mgr_ && mgr_ == other.mgr_, "Bdd::operator| across managers");
  Bdd out = mgr_->wrap(mgr_->apply(BddManager::Op::Or, ref_, other.ref_));
  mgr_->maybe_gc();
  return out;
}

Bdd Bdd::operator^(const Bdd& other) const {
  require(mgr_ && mgr_ == other.mgr_, "Bdd::operator^ across managers");
  Bdd out = mgr_->wrap(mgr_->apply(BddManager::Op::Xor, ref_, other.ref_));
  mgr_->maybe_gc();
  return out;
}

Bdd Bdd::operator!() const {
  require(mgr_ != nullptr, "Bdd::operator! on null Bdd");
  Bdd out = mgr_->wrap(mgr_->apply(BddManager::Op::Diff, kTrue, ref_));
  mgr_->maybe_gc();
  return out;
}

Bdd Bdd::minus(const Bdd& other) const {
  require(mgr_ && mgr_ == other.mgr_, "Bdd::minus across managers");
  Bdd out = mgr_->wrap(mgr_->apply(BddManager::Op::Diff, ref_, other.ref_));
  mgr_->maybe_gc();
  return out;
}

bool Bdd::implies(const Bdd& other) const {
  require(mgr_ && mgr_ == other.mgr_, "Bdd::implies across managers");
  // Wrap the apply() result even though only its identity is inspected: an
  // unreferenced NodeRef is exactly what maybe_gc() reclaims, and leaving
  // the temporary uncounted both blocks GC here (pool growth) and invites a
  // use-after-free if any code between apply and use ever collects.
  const Bdd diff = mgr_->wrap(mgr_->apply(BddManager::Op::Diff, ref_, other.ref_));
  mgr_->maybe_gc();
  return diff.is_false();
}

std::size_t Bdd::node_count() const {
  require(mgr_ != nullptr, "node_count on null Bdd");
  std::unordered_set<NodeRef> seen;
  std::vector<NodeRef> stack{ref_};
  while (!stack.empty()) {
    const NodeRef r = stack.back();
    stack.pop_back();
    if (!seen.insert(r).second) continue;
    if (r > kTrue) {
      stack.push_back(mgr_->node_low(r));
      stack.push_back(mgr_->node_high(r));
    }
  }
  return seen.size();
}

double Bdd::sat_count() const {
  require(mgr_ != nullptr, "sat_count on null Bdd");
  std::vector<double> memo;
  return mgr_->sat_count_rec(ref_, memo);
}

// ---------- BddManager ----------

BddManager::BddManager(std::uint32_t num_vars)
    : num_vars_(num_vars),
      buckets_(kInitialBuckets, kNil),
      cache_(kCacheSize) {
  require(num_vars > 0 && num_vars <= 4096, "BddManager: bad variable count");
  // Terminals occupy slots 0 (FALSE) and 1 (TRUE) and are immortal.
  nodes_.push_back({kTermVar, 0, 0, kNil});
  nodes_.push_back({kTermVar, 1, 1, kNil});
  refs_.assign(2, 1);
}

Bdd BddManager::wrap(NodeRef r) {
  inc_ref(r);
  return Bdd(this, r);
}

Bdd BddManager::bdd_true() { return wrap(kTrue); }
Bdd BddManager::bdd_false() { return wrap(kFalse); }

Bdd BddManager::var(std::uint32_t v) {
  require(v < num_vars_, "BddManager::var out of range");
  return wrap(make_node(v, kFalse, kTrue));
}

Bdd BddManager::nvar(std::uint32_t v) {
  require(v < num_vars_, "BddManager::nvar out of range");
  return wrap(make_node(v, kTrue, kFalse));
}

Bdd BddManager::cube(const std::vector<std::pair<std::uint32_t, bool>>& literals) {
  // Build bottom-up in descending variable order so each make_node call is
  // O(1) (children already canonical).
  auto sorted = literals;
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  NodeRef acc = kTrue;
  std::uint32_t prev = kTermVar;
  for (const auto& [v, val] : sorted) {
    require(v < num_vars_, "BddManager::cube variable out of range");
    require(v != prev, "BddManager::cube duplicate variable");
    prev = v;
    acc = val ? make_node(v, kFalse, acc) : make_node(v, acc, kFalse);
  }
  return wrap(acc);
}

Bdd BddManager::equals(std::uint32_t first_var, std::uint32_t width,
                       std::uint64_t value) {
  require(width <= 64, "BddManager::equals width > 64");
  require(first_var + width <= num_vars_, "BddManager::equals out of range");
  std::vector<std::pair<std::uint32_t, bool>> lits;
  lits.reserve(width);
  for (std::uint32_t i = 0; i < width; ++i) {
    const bool bit = (value >> (width - 1 - i)) & 1;  // MSB-first layout
    lits.emplace_back(first_var + i, bit);
  }
  return cube(lits);
}

Bdd BddManager::in_range(std::uint32_t first_var, std::uint32_t width,
                         std::uint64_t lo, std::uint64_t hi) {
  require(width <= 63, "BddManager::in_range width > 63");
  require(first_var + width <= num_vars_, "BddManager::in_range out of range");
  require(lo <= hi, "BddManager::in_range lo > hi");
  const std::uint64_t max_val = (std::uint64_t{1} << width) - 1;
  require(hi <= max_val, "BddManager::in_range hi too large");

  // Decompose [lo, hi] into maximal aligned prefixes, OR the cubes.
  Bdd acc = bdd_false();
  std::uint64_t cur = lo;
  while (cur <= hi) {
    // Largest aligned block starting at cur that fits in [cur, hi].
    std::uint32_t block = 0;
    while (block < width) {
      const std::uint64_t size = std::uint64_t{1} << (block + 1);
      if (cur % size != 0) break;
      if (cur + size - 1 > hi) break;
      ++block;
    }
    // Prefix of (width - block) fixed MSBs.
    std::vector<std::pair<std::uint32_t, bool>> lits;
    for (std::uint32_t i = 0; i < width - block; ++i) {
      const bool bit = (cur >> (width - 1 - i)) & 1;
      lits.emplace_back(first_var + i, bit);
    }
    acc = acc | cube(lits);
    const std::uint64_t size = std::uint64_t{1} << block;
    if (cur + size - 1 >= hi) break;  // also guards overflow at the top
    cur += size;
  }
  return acc;
}

Bdd BddManager::ite(const Bdd& f, const Bdd& g, const Bdd& h) {
  require(f.manager() == this && g.manager() == this && h.manager() == this,
          "BddManager::ite across managers");
  Bdd out = wrap(ite_rec(f.ref(), g.ref(), h.ref()));
  maybe_gc();
  return out;
}

Bdd BddManager::restrict_var(const Bdd& f, std::uint32_t v, bool value) {
  require(f.manager() == this, "restrict_var across managers");
  require(v < num_vars_, "restrict_var out of range");
  Bdd out = wrap(restrict_rec(f.ref(), v, value));
  maybe_gc();
  return out;
}

Bdd BddManager::exists(const Bdd& f, std::uint32_t v) {
  require(f.manager() == this, "exists across managers");
  const NodeRef lo = restrict_rec(f.ref(), v, false);
  // Protect lo across the second recursion (which may not GC, but keeps the
  // invariant obvious if auto-GC policy ever changes).
  Bdd lo_h = wrap(lo);
  const NodeRef hi = restrict_rec(f.ref(), v, true);
  Bdd hi_h = wrap(hi);
  return lo_h | hi_h;
}

std::vector<std::uint32_t> BddManager::support(const Bdd& f) {
  std::vector<bool> present(num_vars_, false);
  std::unordered_set<NodeRef> seen;
  std::vector<NodeRef> stack{f.ref()};
  while (!stack.empty()) {
    const NodeRef r = stack.back();
    stack.pop_back();
    if (r <= kTrue || !seen.insert(r).second) continue;
    present[nodes_[r].var] = true;
    stack.push_back(nodes_[r].low);
    stack.push_back(nodes_[r].high);
  }
  std::vector<std::uint32_t> out;
  for (std::uint32_t v = 0; v < num_vars_; ++v)
    if (present[v]) out.push_back(v);
  return out;
}

std::vector<std::uint8_t> BddManager::any_sat(const Bdd& f) {
  require(f.manager() == this, "any_sat across managers");
  require(!f.is_false(), "any_sat of FALSE");
  std::vector<std::uint8_t> out(num_vars_, 0);
  NodeRef r = f.ref();
  while (r > kTrue) {
    const Node& n = nodes_[r];
    if (n.high != kFalse) {
      out[n.var] = 1;
      r = n.high;
    } else {
      out[n.var] = 0;
      r = n.low;
    }
  }
  return out;
}

std::vector<std::uint8_t> BddManager::random_sat(
    const Bdd& f, const std::function<std::uint64_t()>& rnd) {
  require(f.manager() == this, "random_sat across managers");
  require(!f.is_false(), "random_sat of FALSE");
  std::vector<double> memo;
  std::vector<std::uint8_t> out(num_vars_, 0);
  // Randomize all bits first; the walk overwrites constrained ones.
  for (std::uint32_t v = 0; v < num_vars_; ++v) out[v] = rnd() & 1;
  NodeRef r = f.ref();
  while (r > kTrue) {
    const Node& n = nodes_[r];
    const double cl = sat_count_rec(n.low, memo);
    const double ch = sat_count_rec(n.high, memo);
    const double total = cl + ch;
    const double pick = (static_cast<double>(rnd() >> 11) * 0x1.0p-53) * total;
    if (pick < ch && n.high != kFalse) {
      out[n.var] = 1;
      r = n.high;
    } else {
      out[n.var] = 0;
      r = n.low;
    }
  }
  return out;
}

// ---------- node pool / unique table ----------

std::size_t BddManager::bucket_of(std::uint32_t var, NodeRef low, NodeRef high) const {
  const std::uint64_t h =
      mix64((std::uint64_t{var} << 40) ^ (std::uint64_t{low} << 20) ^ high);
  return static_cast<std::size_t>(h) & (buckets_.size() - 1);
}

NodeRef BddManager::make_node(std::uint32_t var, NodeRef low, NodeRef high) {
  if (low == high) return low;  // reduction rule
  const std::size_t b = bucket_of(var, low, high);
  for (NodeRef r = buckets_[b]; r != kNil; r = nodes_[r].next) {
    const Node& n = nodes_[r];
    if (n.var == var && n.low == low && n.high == high) {
      ++op_stats_.unique_hits;
      return r;
    }
  }
  // Budget gate (graceful degradation): refuse to grow the pool past the
  // configured cap with a typed error instead of allocating toward OOM.
  // Thrown before any mutation, so the manager stays consistent — created
  // intermediates are unreferenced garbage the next gc() reclaims.
  if (node_budget_ > 0 && nodes_.size() - free_count_ >= node_budget_)
    throw Error(ErrorCode::kResourceExhausted,
                "BDD node budget exhausted (" + std::to_string(node_budget_) +
                    " nodes); raise node_budget or simplify the ruleset");
  ++op_stats_.nodes_created;
  NodeRef r;
  if (free_head_ != kNil) {
    r = free_head_;
    free_head_ = nodes_[r].next;
    --free_count_;
  } else {
    r = static_cast<NodeRef>(nodes_.size());
    nodes_.push_back({});
    refs_.push_back(0);
  }
  nodes_[r] = {var, low, high, buckets_[b]};
  refs_[r] = 0;
  buckets_[b] = r;
  if (nodes_.size() - free_count_ > buckets_.size()) rehash(buckets_.size() * 2);
  return r;
}

void BddManager::rehash(std::size_t new_bucket_count) {
  buckets_.assign(new_bucket_count, kNil);
  for (NodeRef r = 2; r < nodes_.size(); ++r) {
    Node& n = nodes_[r];
    if (n.var == kFreeVar) continue;
    const std::size_t b = bucket_of(n.var, n.low, n.high);
    n.next = buckets_[b];
    buckets_[b] = r;
  }
  // Rebuild the free list, which shared the `next` links.
  free_head_ = kNil;
  free_count_ = 0;
  for (NodeRef r = 2; r < nodes_.size(); ++r) {
    if (nodes_[r].var == kFreeVar) {
      nodes_[r].next = free_head_;
      free_head_ = r;
      ++free_count_;
    }
  }
}

// ---------- operation cache ----------

BddManager::CacheEntry& BddManager::cache_slot(std::uint64_t key, NodeRef a,
                                               NodeRef b, NodeRef c) {
  const std::uint64_t h = mix64(key ^ mix64((std::uint64_t{a} << 42) ^
                                            (std::uint64_t{b} << 21) ^ c));
  return cache_[static_cast<std::size_t>(h) & (kCacheSize - 1)];
}

void BddManager::cache_clear() {
  for (auto& e : cache_) e.key = ~std::uint64_t{0};
}

// ---------- apply / not / ite / restrict ----------

NodeRef BddManager::apply_terminal(Op op, NodeRef f, NodeRef g, bool& hit) {
  hit = true;
  switch (op) {
    case Op::And:
      if (f == kFalse || g == kFalse) return kFalse;
      if (f == kTrue) return g;
      if (g == kTrue) return f;
      if (f == g) return f;
      break;
    case Op::Or:
      if (f == kTrue || g == kTrue) return kTrue;
      if (f == kFalse) return g;
      if (g == kFalse) return f;
      if (f == g) return f;
      break;
    case Op::Xor:
      if (f == g) return kFalse;
      if (f == kFalse) return g;
      if (g == kFalse) return f;
      break;
    case Op::Diff:  // f AND NOT g
      if (f == kFalse || g == kTrue) return kFalse;
      if (f == g) return kFalse;
      if (g == kFalse) return f;
      break;
    default:
      break;
  }
  hit = false;
  return kFalse;
}

NodeRef BddManager::apply(Op op, NodeRef f, NodeRef g) {
  bool hit = false;
  const NodeRef term = apply_terminal(op, f, g, hit);
  if (hit) return term;

  // Commutative ops: canonical operand order improves cache hit rate.
  if ((op == Op::And || op == Op::Or || op == Op::Xor) && f > g) std::swap(f, g);

  const std::uint64_t key = static_cast<std::uint64_t>(op);
  CacheEntry& slot = cache_slot(key, f, g, 0);
  if (slot.key == key && slot.a == f && slot.b == g) {
    ++op_stats_.cache_hits;
    return slot.result;
  }
  ++op_stats_.cache_misses;

  const Node& nf = nodes_[f];
  const Node& ng = nodes_[g];
  const std::uint32_t top = std::min(nf.var, ng.var);
  const NodeRef f0 = nf.var == top ? nf.low : f;
  const NodeRef f1 = nf.var == top ? nf.high : f;
  const NodeRef g0 = ng.var == top ? ng.low : g;
  const NodeRef g1 = ng.var == top ? ng.high : g;

  const NodeRef low = apply(op, f0, g0);
  const NodeRef high = apply(op, f1, g1);
  const NodeRef result = make_node(top, low, high);

  slot = {key, f, g, 0, result};
  return result;
}

NodeRef BddManager::ite_rec(NodeRef f, NodeRef g, NodeRef h) {
  if (f == kTrue) return g;
  if (f == kFalse) return h;
  if (g == h) return g;
  if (g == kTrue && h == kFalse) return f;

  const std::uint64_t key = static_cast<std::uint64_t>(Op::Ite);
  CacheEntry& slot = cache_slot(key, f, g, h);
  if (slot.key == key && slot.a == f && slot.b == g && slot.c == h) {
    ++op_stats_.cache_hits;
    return slot.result;
  }
  ++op_stats_.cache_misses;

  std::uint32_t top = nodes_[f].var;
  if (g > kTrue) top = std::min(top, nodes_[g].var);
  if (h > kTrue) top = std::min(top, nodes_[h].var);

  const auto cof = [&](NodeRef r, bool hi) -> NodeRef {
    if (r <= kTrue || nodes_[r].var != top) return r;
    return hi ? nodes_[r].high : nodes_[r].low;
  };

  const NodeRef low = ite_rec(cof(f, false), cof(g, false), cof(h, false));
  const NodeRef high = ite_rec(cof(f, true), cof(g, true), cof(h, true));
  const NodeRef result = make_node(top, low, high);

  slot = {key, f, g, h, result};
  return result;
}

NodeRef BddManager::restrict_rec(NodeRef f, std::uint32_t v, bool value) {
  if (f <= kTrue) return f;
  // Copy the fields: the recursions below may make_node() and reallocate
  // the node pool, which would invalidate a held reference into it.
  const std::uint32_t var = nodes_[f].var;
  const NodeRef f_low = nodes_[f].low;
  const NodeRef f_high = nodes_[f].high;
  if (var > v) return f;  // v does not appear below (ordered BDD)
  if (var == v) return value ? f_high : f_low;

  const std::uint64_t key =
      static_cast<std::uint64_t>(Op::Restrict) | (std::uint64_t{v} << 8) |
      (std::uint64_t{value} << 40);
  CacheEntry& slot = cache_slot(key, f, 0, 0);
  if (slot.key == key && slot.a == f) {
    ++op_stats_.cache_hits;
    return slot.result;
  }
  ++op_stats_.cache_misses;

  const NodeRef low = restrict_rec(f_low, v, value);
  const NodeRef high = restrict_rec(f_high, v, value);
  const NodeRef result = make_node(var, low, high);

  slot = {key, f, 0, 0, result};
  return result;
}

// ---------- sat counting ----------

double BddManager::sat_count_rec(NodeRef r, std::vector<double>& memo) const {
  if (r == kFalse) return 0.0;
  if (r == kTrue) return std::pow(2.0, static_cast<double>(num_vars_));
  if (memo.size() < nodes_.size()) memo.resize(nodes_.size(), -1.0);
  if (memo[r] >= 0.0) return memo[r];
  const Node& n = nodes_[r];
  const double c = 0.5 * (sat_count_rec(n.low, memo) + sat_count_rec(n.high, memo));
  memo[r] = c;
  return c;
}

// ---------- reference counting & GC ----------

void BddManager::inc_ref(NodeRef r) { ++refs_[r]; }

void BddManager::dec_ref(NodeRef r) {
  require(refs_[r] > 0, "Bdd reference count underflow");
  --refs_[r];
}

void BddManager::mark(NodeRef r, std::vector<bool>& marked) const {
  std::vector<NodeRef> stack{r};
  while (!stack.empty()) {
    const NodeRef x = stack.back();
    stack.pop_back();
    if (x <= kTrue || marked[x]) continue;
    marked[x] = true;
    stack.push_back(nodes_[x].low);
    stack.push_back(nodes_[x].high);
  }
}

void BddManager::gc() {
  ++op_stats_.gc_runs;
  std::vector<bool> marked(nodes_.size(), false);
  for (NodeRef r = 2; r < nodes_.size(); ++r)
    if (refs_[r] > 0) mark(r, marked);

  free_head_ = kNil;
  free_count_ = 0;
  for (NodeRef r = 2; r < nodes_.size(); ++r) {
    if (!marked[r] && nodes_[r].var != kFreeVar) nodes_[r].var = kFreeVar;
    if (nodes_[r].var == kFreeVar) {
      nodes_[r].next = free_head_;
      free_head_ = r;
      ++free_count_;
    }
  }

  // Rebuild the unique table over survivors.
  std::size_t bucket_count = buckets_.size();
  const std::size_t live = nodes_.size() - free_count_;
  while (bucket_count > kInitialBuckets && bucket_count / 4 > live)
    bucket_count /= 2;
  buckets_.assign(bucket_count, kNil);
  for (NodeRef r = 2; r < nodes_.size(); ++r) {
    Node& n = nodes_[r];
    if (n.var == kFreeVar) continue;
    const std::size_t b = bucket_of(n.var, n.low, n.high);
    n.next = buckets_[b];
    buckets_[b] = r;
  }

  cache_clear();
  next_gc_size_ = std::max<std::size_t>(2 * live, 1 << 16);
}

void BddManager::maybe_gc() {
  if (auto_gc_ && nodes_.size() - free_count_ >= next_gc_size_) gc();
}

std::size_t BddManager::live_node_count() const {
  std::vector<bool> marked(nodes_.size(), false);
  std::size_t live = 2;
  for (NodeRef r = 2; r < nodes_.size(); ++r)
    if (refs_[r] > 0) mark(r, marked);
  for (NodeRef r = 2; r < nodes_.size(); ++r)
    if (marked[r]) ++live;
  return live;
}

std::size_t BddManager::allocated_node_count() const {
  return nodes_.size() - free_count_;
}

std::size_t BddManager::memory_bytes() const {
  return nodes_.capacity() * sizeof(Node) + refs_.capacity() * sizeof(std::uint32_t) +
         buckets_.capacity() * sizeof(NodeRef) + cache_.capacity() * sizeof(CacheEntry);
}

// ---------- cross-manager transfer ----------

namespace {
// Memoizes RAII handles so every transferred subgraph stays pinned against
// dst's garbage collector for the duration of the transfer.
Bdd transfer_rec(const BddManager& src_mgr, NodeRef src, BddManager& dst,
                 std::unordered_map<NodeRef, Bdd>& memo) {
  if (src == kFalse) return dst.bdd_false();
  if (src == kTrue) return dst.bdd_true();
  const auto it = memo.find(src);
  if (it != memo.end()) return it->second;
  const Bdd low = transfer_rec(src_mgr, src_mgr.node_low(src), dst, memo);
  const Bdd high = transfer_rec(src_mgr, src_mgr.node_high(src), dst, memo);
  const Bdd v = dst.var(src_mgr.node_var(src));
  Bdd r = dst.ite(v, high, low);
  memo.emplace(src, r);
  return r;
}
}  // namespace

Bdd transfer(const Bdd& src, BddManager& dst) {
  require(src.valid(), "transfer: null Bdd");
  require(src.manager()->num_vars() <= dst.num_vars(),
          "transfer: destination manager has fewer variables");
  std::unordered_map<NodeRef, Bdd> memo;
  return transfer_rec(*src.manager(), src.ref(), dst, memo);
}

std::vector<Bdd> transfer(const std::vector<Bdd>& srcs, BddManager& dst) {
  std::vector<Bdd> out;
  out.reserve(srcs.size());
  if (srcs.empty()) return out;
  const BddManager* src_mgr = srcs.front().manager();
  require(src_mgr != nullptr, "transfer: null Bdd");
  require(src_mgr->num_vars() <= dst.num_vars(),
          "transfer: destination manager has fewer variables");
  std::unordered_map<NodeRef, Bdd> memo;
  for (const Bdd& src : srcs) {
    require(src.manager() == src_mgr, "transfer: roots span several managers");
    out.push_back(transfer_rec(*src_mgr, src.ref(), dst, memo));
  }
  return out;
}

// ---------- flatten (manager-free export) ----------

std::vector<std::uint32_t> flatten(const std::vector<Bdd>& roots,
                                   std::vector<FlatBddNode>& out_nodes) {
  if (out_nodes.empty()) {
    out_nodes.push_back({0xFFFFFFFFu, kFalse, kFalse});  // terminal FALSE
    out_nodes.push_back({0xFFFFFFFFu, kTrue, kTrue});    // terminal TRUE
  }
  const BddManager* mgr = nullptr;
  for (const Bdd& r : roots) {
    require(r.valid(), "flatten: null Bdd");
    require(mgr == nullptr || r.manager() == mgr, "flatten: mixed managers");
    mgr = r.manager();
  }

  // Discover every reachable node once, assigning dense ids on first visit;
  // terminals keep ids 0/1.
  std::unordered_map<NodeRef, std::uint32_t> dense;
  dense.emplace(kFalse, kFalse);
  dense.emplace(kTrue, kTrue);
  std::vector<NodeRef> stack;
  for (const Bdd& r : roots) stack.push_back(r.ref());
  while (!stack.empty()) {
    const NodeRef r = stack.back();
    stack.pop_back();
    if (dense.count(r)) continue;
    dense.emplace(r, static_cast<std::uint32_t>(out_nodes.size()));
    out_nodes.push_back({mgr->node_var(r), 0, 0});  // children patched below
    stack.push_back(mgr->node_low(r));
    stack.push_back(mgr->node_high(r));
  }
  // Patch children now that every reachable node has a dense id.
  for (const auto& [ref, id] : dense) {
    if (ref <= kTrue) continue;
    out_nodes[id].lo = dense.at(mgr->node_low(ref));
    out_nodes[id].hi = dense.at(mgr->node_high(ref));
  }

  std::vector<std::uint32_t> out;
  out.reserve(roots.size());
  for (const Bdd& r : roots) out.push_back(dense.at(r.ref()));
  return out;
}

// ---------- text serialization ----------

std::string serialize(const Bdd& f) {
  require(f.valid(), "serialize: null Bdd");
  const BddManager& mgr = *f.manager();

  // Topological order, children first.
  std::vector<NodeRef> order;
  std::unordered_set<NodeRef> seen{kFalse, kTrue};
  std::vector<std::pair<NodeRef, bool>> stack{{f.ref(), false}};
  while (!stack.empty()) {
    auto [r, expanded] = stack.back();
    stack.pop_back();
    if (seen.count(r)) continue;
    if (expanded) {
      seen.insert(r);
      order.push_back(r);
      continue;
    }
    stack.push_back({r, true});
    stack.push_back({mgr.node_low(r), false});
    stack.push_back({mgr.node_high(r), false});
  }

  std::ostringstream os;
  os << "bdd v1 " << mgr.num_vars() << " " << f.ref() << "\n";
  for (const NodeRef r : order) {
    os << r << " " << mgr.node_var(r) << " " << mgr.node_low(r) << " "
       << mgr.node_high(r) << "\n";
  }
  return os.str();
}

Bdd deserialize(BddManager& mgr, const std::string& text) {
  std::istringstream is(text);
  std::string magic, version;
  std::uint32_t num_vars = 0;
  NodeRef root = 0;
  is >> magic >> version >> num_vars >> root;
  require(is.good() && magic == "bdd" && version == "v1",
          "deserialize: bad header");
  require(num_vars <= mgr.num_vars(),
          "deserialize: manager has fewer variables than the serialized BDD");

  std::unordered_map<NodeRef, Bdd> built;
  built.emplace(kFalse, mgr.bdd_false());
  built.emplace(kTrue, mgr.bdd_true());

  NodeRef id;
  std::uint32_t var;
  NodeRef low, high;
  while (is >> id >> var >> low >> high) {
    const auto lo = built.find(low);
    const auto hi = built.find(high);
    require(lo != built.end() && hi != built.end(),
            "deserialize: node references undeclared child");
    require(var < num_vars, "deserialize: variable out of range");
    const Bdd v = mgr.var(var);
    built.emplace(id, mgr.ite(v, hi->second, lo->second));
  }
  const auto it = built.find(root);
  require(it != built.end(), "deserialize: root node missing");
  return it->second;
}

// ---------- DOT export ----------

std::string BddManager::to_dot(const Bdd& f, const std::string& name) const {
  std::ostringstream os;
  os << "digraph " << name << " {\n";
  os << "  F [shape=box,label=\"0\"]; T [shape=box,label=\"1\"];\n";
  std::unordered_set<NodeRef> seen;
  std::vector<NodeRef> stack{f.ref()};
  const auto id = [](NodeRef r) -> std::string {
    if (r == kFalse) return "F";
    if (r == kTrue) return "T";
    return "n" + std::to_string(r);
  };
  while (!stack.empty()) {
    const NodeRef r = stack.back();
    stack.pop_back();
    if (r <= kTrue || !seen.insert(r).second) continue;
    const Node& n = nodes_[r];
    os << "  " << id(r) << " [label=\"x" << n.var << "\"];\n";
    os << "  " << id(r) << " -> " << id(n.low) << " [style=dashed];\n";
    os << "  " << id(r) << " -> " << id(n.high) << ";\n";
    stack.push_back(n.low);
    stack.push_back(n.high);
  }
  os << "}\n";
  return os.str();
}

}  // namespace apc::bdd
