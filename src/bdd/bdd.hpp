// A from-scratch reduced ordered binary decision diagram (ROBDD) package.
//
// This is the substrate the paper builds on: every ACL and every forwarding
// port is compiled to a predicate over the packet-header bits, and predicates
// are represented as BDDs (the paper used the JDD Java library; see
// DESIGN.md for the substitution argument).
//
// Design
//  * Nodes live in an integer-indexed pool owned by a BddManager; node 0 is
//    the FALSE terminal and node 1 is TRUE.  Indices are stable for the life
//    of a node, so external handles survive garbage collection.
//  * Hash-consing via an open-chaining unique table guarantees canonicity:
//    two equal functions are the same node index, so equality is O(1).
//  * Binary operations (AND/OR/XOR/DIFF) and NOT are memoized in a
//    direct-mapped operation cache.
//  * External references are RAII `Bdd` handles that reference-count their
//    root node.  Garbage collection is mark-and-sweep from the counted
//    roots and runs only between top-level operations, so internal
//    recursion never needs protection.
//  * Variable order is fixed at construction (header bit order); the packet
//    modules choose an order that puts the most discriminating fields first.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace apc::bdd {

using NodeRef = std::uint32_t;

inline constexpr NodeRef kFalse = 0;
inline constexpr NodeRef kTrue = 1;

class BddManager;

/// RAII reference-counted handle to a BDD root.  Copyable and movable.
/// Equality compares canonical node indices (O(1) thanks to hash-consing).
class Bdd {
 public:
  Bdd() = default;  ///< Null handle; most operations require a bound handle.
  Bdd(const Bdd& other);
  Bdd(Bdd&& other) noexcept;
  Bdd& operator=(const Bdd& other);
  Bdd& operator=(Bdd&& other) noexcept;
  ~Bdd();

  bool valid() const { return mgr_ != nullptr; }
  bool is_false() const { return ref_ == kFalse; }
  bool is_true() const { return ref_ == kTrue; }

  NodeRef ref() const { return ref_; }
  BddManager* manager() const { return mgr_; }

  Bdd operator&(const Bdd& other) const;
  Bdd operator|(const Bdd& other) const;
  Bdd operator^(const Bdd& other) const;
  Bdd operator!() const;
  /// Set difference: this AND NOT other.
  Bdd minus(const Bdd& other) const;
  /// True iff this implies other (this AND NOT other == false).
  bool implies(const Bdd& other) const;

  bool operator==(const Bdd& other) const {
    return mgr_ == other.mgr_ && ref_ == other.ref_;
  }
  bool operator!=(const Bdd& other) const { return !(*this == other); }

  /// Evaluate under a variable assignment.  `bit(v)` must return the value
  /// of variable v.  O(path length) <= O(num_vars).
  template <typename BitFn>
  bool eval(BitFn&& bit) const;

  /// Number of distinct nodes reachable from this root (incl. terminals).
  std::size_t node_count() const;
  /// Number of satisfying assignments over all manager variables.
  double sat_count() const;

 private:
  friend class BddManager;
  Bdd(BddManager* mgr, NodeRef ref);  // takes ownership of one reference

  BddManager* mgr_ = nullptr;
  NodeRef ref_ = kFalse;
};

class BddManager {
 public:
  /// Creates a manager over `num_vars` boolean variables (header bits).
  explicit BddManager(std::uint32_t num_vars);
  BddManager(const BddManager&) = delete;
  BddManager& operator=(const BddManager&) = delete;

  std::uint32_t num_vars() const { return num_vars_; }

  Bdd bdd_true();
  Bdd bdd_false();
  /// Literal: variable v.
  Bdd var(std::uint32_t v);
  /// Negative literal: NOT variable v.
  Bdd nvar(std::uint32_t v);

  /// Conjunction of literals: (var, value) pairs.  The workhorse for
  /// prefix/exact-match rule compilation.
  Bdd cube(const std::vector<std::pair<std::uint32_t, bool>>& literals);

  /// Predicate true iff bits [first_var, first_var+width) equal the low
  /// `width` bits of `value` (MSB-first within the field).
  Bdd equals(std::uint32_t first_var, std::uint32_t width, std::uint64_t value);

  /// Predicate true iff the `width`-bit field starting at `first_var`
  /// (MSB-first) is in the inclusive range [lo, hi].
  Bdd in_range(std::uint32_t first_var, std::uint32_t width, std::uint64_t lo,
               std::uint64_t hi);

  /// if-then-else.
  Bdd ite(const Bdd& f, const Bdd& g, const Bdd& h);

  /// Cofactor: fix variable v to `value`.
  Bdd restrict_var(const Bdd& f, std::uint32_t v, bool value);
  /// Existential quantification over variable v.
  Bdd exists(const Bdd& f, std::uint32_t v);

  /// Variables the function actually depends on.
  std::vector<std::uint32_t> support(const Bdd& f);

  /// One satisfying assignment (values for all variables; variables not on
  /// the chosen path default to 0).  Requires f != false.
  std::vector<std::uint8_t> any_sat(const Bdd& f);
  /// A uniformly-flavored random satisfying assignment: random branch choice
  /// weighted by subtree sat-counts; unconstrained bits randomized.
  /// `rnd()` must return a uint64 of fresh random bits.
  std::vector<std::uint8_t> random_sat(const Bdd& f,
                                       const std::function<std::uint64_t()>& rnd);

  /// Explicit mark-and-sweep garbage collection (also clears op caches).
  void gc();
  /// Runs gc() if the pool has grown past the adaptive threshold.  Safe to
  /// call only between top-level operations (all public ops do internally).
  void maybe_gc();

  /// Caps the pool at `max_nodes` occupied slots.  Once the cap is reached,
  /// any operation needing a fresh node throws apc::Error(kResourceExhausted)
  /// instead of allocating toward OOM; the manager stays consistent and
  /// usable (run gc() and retry, or raise the budget).  0 = unlimited.
  void set_node_budget(std::size_t max_nodes) { node_budget_ = max_nodes; }
  std::size_t node_budget() const { return node_budget_; }

  std::size_t live_node_count() const;          ///< nodes reachable from roots
  std::size_t allocated_node_count() const;     ///< pool slots in use (incl. garbage)
  std::size_t memory_bytes() const;             ///< approximate heap footprint
  std::size_t unique_table_buckets() const { return buckets_.size(); }

  /// Lifetime operation counters (see src/obs/).  Plain (non-atomic)
  /// members: a manager is single-threaded by contract, so the owning
  /// thread's increments are race-free and cost one add each.
  struct OpStats {
    std::uint64_t cache_hits = 0;     ///< op-cache lookups that hit
    std::uint64_t cache_misses = 0;   ///< op-cache lookups that recursed
    std::uint64_t unique_hits = 0;    ///< make_node found an existing node
    std::uint64_t nodes_created = 0;  ///< make_node allocated a fresh node
    std::uint64_t gc_runs = 0;
  };
  const OpStats& op_stats() const { return op_stats_; }
  void reset_op_stats() { op_stats_ = OpStats{}; }

  /// Graphviz dump of `f` for documentation/debugging.
  std::string to_dot(const Bdd& f, const std::string& name = "bdd") const;

  // ---- Internal (used by Bdd handles and tests) ----
  void inc_ref(NodeRef r);
  void dec_ref(NodeRef r);
  std::uint32_t node_var(NodeRef r) const { return nodes_[r].var; }
  NodeRef node_low(NodeRef r) const { return nodes_[r].low; }
  NodeRef node_high(NodeRef r) const { return nodes_[r].high; }

  template <typename BitFn>
  bool eval_ref(NodeRef r, BitFn&& bit) const {
    while (r > kTrue) {
      const Node& n = nodes_[r];
      r = bit(n.var) ? n.high : n.low;
    }
    return r == kTrue;
  }

 private:
  friend class Bdd;

  static constexpr std::uint32_t kTermVar = 0xFFFFFFFFu;
  static constexpr std::uint32_t kFreeVar = 0xFFFFFFFEu;
  static constexpr NodeRef kNil = 0xFFFFFFFFu;

  struct Node {
    std::uint32_t var;
    NodeRef low;
    NodeRef high;
    NodeRef next;  // unique-table chain / free-list link
  };

  enum class Op : std::uint8_t { And = 1, Or, Xor, Diff, Not, Ite, Exists, Restrict };

  struct CacheEntry {
    std::uint64_t key = ~std::uint64_t{0};
    NodeRef a = 0, b = 0, c = 0;
    NodeRef result = 0;
  };

  NodeRef make_node(std::uint32_t var, NodeRef low, NodeRef high);
  NodeRef apply(Op op, NodeRef f, NodeRef g);
  NodeRef apply_terminal(Op op, NodeRef f, NodeRef g, bool& hit);
  NodeRef not_rec(NodeRef f);
  NodeRef ite_rec(NodeRef f, NodeRef g, NodeRef h);
  NodeRef restrict_rec(NodeRef f, std::uint32_t v, bool value);

  std::size_t bucket_of(std::uint32_t var, NodeRef low, NodeRef high) const;
  void rehash(std::size_t new_bucket_count);
  void cache_clear();

  CacheEntry& cache_slot(std::uint64_t key, NodeRef a, NodeRef b, NodeRef c);

  double sat_count_rec(NodeRef r, std::vector<double>& memo) const;

  void mark(NodeRef r, std::vector<bool>& marked) const;

  Bdd wrap(NodeRef r);

  std::uint32_t num_vars_;
  std::vector<Node> nodes_;
  std::vector<std::uint32_t> refs_;   // external reference counts
  std::vector<NodeRef> buckets_;      // unique table (power-of-two size)
  NodeRef free_head_ = kNil;
  std::size_t free_count_ = 0;
  std::vector<CacheEntry> cache_;     // direct-mapped op cache
  std::size_t next_gc_size_ = 1 << 16;
  std::size_t node_budget_ = 0;  // 0 = unlimited
  bool auto_gc_ = true;
  OpStats op_stats_;
};

/// Rebuilds `src` (owned by some other manager) inside `dst` and returns the
/// new handle.  Managers must have compatible variable counts.  Used by the
/// parallel-reconstruction path, which rebuilds in an isolated manager (the
/// paper runs reconstruction as a separate process, SS VI-B).
Bdd transfer(const Bdd& src, BddManager& dst);

/// Batched transfer: rebuilds every root (all owned by one source manager)
/// inside `dst` with a single shared memo, so subgraphs shared between
/// roots are walked once.  Used by the parallel atom pipeline to move whole
/// partial atom universes between per-thread managers.
std::vector<Bdd> transfer(const std::vector<Bdd>& srcs, BddManager& dst);

/// A manager-free BDD node for flattened (frozen) evaluation.  Children are
/// indices into the same array; slots 0 and 1 are the FALSE/TRUE terminals.
/// No ref counts, no unique table, no GC — an array of these is immutable
/// and safe to read from any number of threads.
struct FlatBddNode {
  std::uint32_t var;
  std::uint32_t lo;
  std::uint32_t hi;
};

/// Exports the subgraphs reachable from `roots` (all on one manager) into a
/// single contiguous node array shared across all roots, appending to
/// `out_nodes` (which is initialized with the two terminal slots if empty).
/// Returns the dense index of each root, in input order.  The export is a
/// pure read of the manager: it takes no references and triggers no GC.
std::vector<std::uint32_t> flatten(const std::vector<Bdd>& roots,
                                   std::vector<FlatBddNode>& out_nodes);

/// Evaluates a flattened BDD: walk from `root` taking `hi` when bit(var) is
/// set, else `lo`, until a terminal.  The loop the concurrent query engine
/// runs — a dependent-load array walk with zero shared mutable state.
template <typename BitFn>
inline bool eval_flat(const FlatBddNode* nodes, std::uint32_t root, BitFn&& bit) {
  while (root > kTrue) {
    const FlatBddNode& n = nodes[root];
    root = bit(n.var) ? n.hi : n.lo;
  }
  return root == kTrue;
}

/// Serializes a BDD to a compact text form ("bdd v1" header + one node per
/// line, children before parents).  Deserializing into any manager with at
/// least as many variables reproduces an equivalent (canonical) function.
/// Useful for caching compiled predicates across runs.
std::string serialize(const Bdd& f);
Bdd deserialize(BddManager& mgr, const std::string& text);

// ---- Bdd inline/template implementations ----

template <typename BitFn>
bool Bdd::eval(BitFn&& bit) const {
  require(mgr_ != nullptr, "eval on null Bdd");
  return mgr_->eval_ref(ref_, std::forward<BitFn>(bit));
}

}  // namespace apc::bdd
