// Low-overhead observability primitives (metrics, histograms, registry).
//
// The paper's operational story (SS VI-A/B, Figs. 8/14) turns on runtime
// signals — query throughput, update counts, tree degradation — that the
// system must measure about itself.  This header provides the layer every
// subsystem records into:
//
//   * Counter / Gauge       — relaxed-atomic scalars; an increment is one
//                             uncontended atomic add, safe from any thread.
//   * LatencyHistogram      — log2-bucketed value histogram (one atomic
//                             counter per power-of-two bucket) answering
//                             count/mean/p50/p95/p99/max.  Recording is two
//                             relaxed adds plus a CAS-free max update; no
//                             locks, no allocation, TSan-clean.
//   * ScopedTimer           — RAII wall-clock probe recording nanoseconds
//                             into a LatencyHistogram on destruction.
//   * MetricsRegistry       — names metrics and renders them as rows or
//                             JSON.  Registration is writer-side; reading
//                             (snapshot()/to_json()) only loads atomics.
//
// Off-switches.  Runtime: obs::set_enabled(false) makes ScopedTimer and
// histogram recording no-ops (one relaxed load to check).  Compile time:
// building with -DAPC_OBS_DISABLED compiles every record/add body away while
// keeping the API, for hot paths that must carry zero instructions.  The
// design keeps the *query* hot path clean either way: the engine times whole
// batches, never individual packets, and BDD/op-cache counters live on the
// construction path only.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace apc::obs {

#if defined(APC_OBS_DISABLED)
inline constexpr bool kCompiledIn = false;
#else
inline constexpr bool kCompiledIn = true;
#endif

/// Runtime master switch for the *recording* side (timers/histograms).
/// Plain counters stay live — a relaxed add costs less than the branch that
/// would gate it.  Defaults to enabled.
bool enabled();
void set_enabled(bool on);

class Counter {
 public:
  void add(std::uint64_t n = 1) {
    if constexpr (kCompiledIn) v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// A signed scalar with set/add semantics plus a monotonic-max helper
/// (queue-depth high-water marks and the like).
class Gauge {
 public:
  void set(std::int64_t v) {
    if constexpr (kCompiledIn) v_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t n) {
    if constexpr (kCompiledIn) v_.fetch_add(n, std::memory_order_relaxed);
  }
  /// Raises the gauge to `v` if above the current value (lock-free CAS loop).
  void update_max(std::int64_t v) {
    if constexpr (kCompiledIn) {
      std::int64_t cur = v_.load(std::memory_order_relaxed);
      while (v > cur &&
             !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
      }
    }
  }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Log2-bucketed histogram over unsigned values.  Bucket b holds values
/// whose bit width is b (i.e. [2^(b-1), 2^b) for b >= 1; bucket 0 holds 0),
/// so quantiles carry at most a 2x bucket error — plenty for latency
/// percentiles spanning nanoseconds to seconds.  All state is relaxed
/// atomics: record() from any number of threads, read any time.
///
/// Values are unit-agnostic; the latency helpers store nanoseconds and the
/// seconds-flavored accessors convert back.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void record(std::uint64_t value) {
    if constexpr (kCompiledIn) {
      if (!enabled()) return;
      buckets_[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
      sum_.fetch_add(value, std::memory_order_relaxed);
      std::uint64_t cur = max_.load(std::memory_order_relaxed);
      while (value > cur &&
             !max_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
      }
    }
  }
  void record_seconds(double s) {
    record(s <= 0.0 ? 0 : static_cast<std::uint64_t>(s * 1e9));
  }

  std::uint64_t count() const {
    std::uint64_t n = 0;
    for (const auto& b : buckets_) n += b.load(std::memory_order_relaxed);
    return n;
  }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  double mean() const {
    const std::uint64_t n = count();
    return n ? static_cast<double>(sum()) / static_cast<double>(n) : 0.0;
  }

  /// Quantile estimate (q in [0, 1]): the geometric midpoint of the bucket
  /// containing the q-th recorded value.  Exact for the bucket, <= 2x within
  /// it.  Returns 0 when empty.
  double quantile(double q) const;

  struct Summary {
    std::uint64_t count = 0;
    double mean = 0.0, p50 = 0.0, p95 = 0.0, p99 = 0.0, max = 0.0;
  };
  /// One consistent-enough read of all derived stats (individual loads are
  /// relaxed; concurrent recording may skew a still-accumulating summary).
  Summary summary() const;

  void reset();

 private:
  static std::size_t bucket_of(std::uint64_t v) {
    return static_cast<std::size_t>(std::bit_width(v));  // 0 -> 0, else 1..64
  }

  std::array<std::atomic<std::uint64_t>, kBuckets + 1> buckets_{};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

/// RAII wall-clock timer recording elapsed *nanoseconds* into a histogram
/// when destroyed.  Checks the runtime switch once, at construction; dismiss()
/// cancels recording.
class ScopedTimer {
 public:
  explicit ScopedTimer(LatencyHistogram& h)
      : hist_(&h), armed_(kCompiledIn && enabled()) {
    if (armed_) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (armed_)
      hist_->record(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - start_)
              .count()));
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  void dismiss() { armed_ = false; }

 private:
  LatencyHistogram* hist_;
  bool armed_;
  std::chrono::steady_clock::time_point start_;
};

/// Derives queries-per-second between sample() calls from a monotonically
/// increasing Counter — the engine-measured throughput signal that feeds
/// ReconstructionPolicy::record_throughput (Fig. 14 trigger loop).
class QpsMeter {
 public:
  explicit QpsMeter(const Counter& c)
      : counter_(&c), last_count_(c.value()),
        last_time_(std::chrono::steady_clock::now()) {}

  /// QPS since the previous sample() (or construction).  Returns 0 when no
  /// time has passed.
  double sample() {
    const auto now = std::chrono::steady_clock::now();
    const std::uint64_t n = counter_->value();
    const double dt = std::chrono::duration<double>(now - last_time_).count();
    const double qps =
        dt > 0.0 ? static_cast<double>(n - last_count_) / dt : 0.0;
    last_count_ = n;
    last_time_ = now;
    return qps;
  }

 private:
  const Counter* counter_;
  std::uint64_t last_count_;
  std::chrono::steady_clock::time_point last_time_;
};

/// A point-in-time read of a registry: plain rows, renderable as JSON.
struct MetricsSnapshot {
  struct Row {
    std::string name;
    double value = 0.0;
    std::string unit;
  };
  std::vector<Row> rows;

  /// `[{"name": "...", "value": v, "unit": "..."}, ...]` — same row shape
  /// the bench harnesses emit, so BENCH_*.json and stats() speak one format.
  std::string to_json() const;
  /// First row with this exact name, or nullptr.
  const Row* find(const std::string& name) const;
};

/// Names metrics owned elsewhere and renders them.  register_* calls happen
/// while the owner is being constructed (single-threaded); snapshot() may be
/// called from any thread afterwards — it only loads atomics and invokes
/// registered callbacks.  Callback metrics (register_fn) read arbitrary
/// state: register only callbacks that are safe wherever snapshot() is
/// called (e.g. under the owner's writer lock).
class MetricsRegistry {
 public:
  void register_counter(std::string name, const Counter* c,
                        std::string unit = "count");
  void register_gauge(std::string name, const Gauge* g,
                      std::string unit = "count");
  /// Expands into <name>.count/.mean/.p50/.p95/.p99/.max rows.  `scale`
  /// multiplies recorded values into `unit` (e.g. 1e-9 for ns -> seconds).
  void register_histogram(std::string name, const LatencyHistogram* h,
                          std::string unit = "seconds", double scale = 1e-9);
  /// A computed scalar (table sizes, ages, non-atomic stats read under the
  /// caller's locking discipline).
  void register_fn(std::string name, std::function<double()> fn,
                   std::string unit = "count");
  /// Includes every metric of `sub` under `prefix` + its name.  `sub` must
  /// outlive this registry.
  void register_sub(std::string prefix, const MetricsRegistry* sub);

  MetricsSnapshot snapshot() const;
  std::string to_json() const { return snapshot().to_json(); }
  /// All row names a snapshot() will produce (the metric inventory).
  std::vector<std::string> names() const;

 private:
  struct Entry {
    enum class Kind { kCounter, kGauge, kHistogram, kFn, kSub } kind;
    std::string name;
    std::string unit;
    const Counter* counter = nullptr;
    const Gauge* gauge = nullptr;
    const LatencyHistogram* hist = nullptr;
    double scale = 1.0;
    std::function<double()> fn;
    const MetricsRegistry* sub = nullptr;
  };
  void collect(const std::string& prefix, MetricsSnapshot& out) const;
  void collect_names(const std::string& prefix,
                     std::vector<std::string>& out) const;

  std::vector<Entry> entries_;
};

}  // namespace apc::obs
