#include "obs/metrics.hpp"

#include <cmath>
#include <cstdio>

namespace apc::obs {

namespace {
std::atomic<bool> g_enabled{true};

/// JSON string escaping for metric names (conservative: names are
/// dotted identifiers, but render anything safely).
void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}
}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

double LatencyHistogram::quantile(double q) const {
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  std::uint64_t counts[kBuckets + 1];
  std::uint64_t total = 0;
  for (std::size_t b = 0; b <= kBuckets; ++b) {
    counts[b] = buckets_[b].load(std::memory_order_relaxed);
    total += counts[b];
  }
  if (total == 0) return 0.0;
  // Rank of the q-th value (1-based), then the bucket containing it.
  const std::uint64_t rank =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(std::ceil(
                                     q * static_cast<double>(total))));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b <= kBuckets; ++b) {
    seen += counts[b];
    if (seen >= rank) {
      if (b == 0) return 0.0;
      // Bucket b covers [2^(b-1), 2^b); report the geometric midpoint,
      // clamped to the observed maximum for the top bucket.
      const double lo = std::ldexp(1.0, static_cast<int>(b) - 1);
      const double mid = lo * 1.5;
      const double mx = static_cast<double>(max());
      return mx > 0.0 ? std::min(mid, mx) : mid;
    }
  }
  return static_cast<double>(max());
}

LatencyHistogram::Summary LatencyHistogram::summary() const {
  Summary s;
  s.count = count();
  s.mean = mean();
  s.p50 = quantile(0.50);
  s.p95 = quantile(0.95);
  s.p99 = quantile(0.99);
  s.max = static_cast<double>(max());
  return s;
}

void LatencyHistogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "[\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out += "  {\"name\": \"";
    append_escaped(out, r.name);
    out += "\", \"value\": ";
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.10g", r.value);
    out += buf;
    out += ", \"unit\": \"";
    append_escaped(out, r.unit);
    out += "\"}";
    out += i + 1 < rows.size() ? ",\n" : "\n";
  }
  out += "]\n";
  return out;
}

const MetricsSnapshot::Row* MetricsSnapshot::find(const std::string& name) const {
  for (const Row& r : rows)
    if (r.name == name) return &r;
  return nullptr;
}

void MetricsRegistry::register_counter(std::string name, const Counter* c,
                                       std::string unit) {
  entries_.push_back(
      {Entry::Kind::kCounter, std::move(name), std::move(unit), c, nullptr,
       nullptr, 1.0, nullptr, nullptr});
}

void MetricsRegistry::register_gauge(std::string name, const Gauge* g,
                                     std::string unit) {
  entries_.push_back(
      {Entry::Kind::kGauge, std::move(name), std::move(unit), nullptr, g,
       nullptr, 1.0, nullptr, nullptr});
}

void MetricsRegistry::register_histogram(std::string name,
                                         const LatencyHistogram* h,
                                         std::string unit, double scale) {
  entries_.push_back(
      {Entry::Kind::kHistogram, std::move(name), std::move(unit), nullptr,
       nullptr, h, scale, nullptr, nullptr});
}

void MetricsRegistry::register_fn(std::string name, std::function<double()> fn,
                                  std::string unit) {
  entries_.push_back(
      {Entry::Kind::kFn, std::move(name), std::move(unit), nullptr, nullptr,
       nullptr, 1.0, std::move(fn), nullptr});
}

void MetricsRegistry::register_sub(std::string prefix, const MetricsRegistry* sub) {
  entries_.push_back(
      {Entry::Kind::kSub, std::move(prefix), "", nullptr, nullptr, nullptr,
       1.0, nullptr, sub});
}

void MetricsRegistry::collect(const std::string& prefix,
                              MetricsSnapshot& out) const {
  for (const Entry& e : entries_) {
    switch (e.kind) {
      case Entry::Kind::kCounter:
        out.rows.push_back({prefix + e.name,
                            static_cast<double>(e.counter->value()), e.unit});
        break;
      case Entry::Kind::kGauge:
        out.rows.push_back(
            {prefix + e.name, static_cast<double>(e.gauge->value()), e.unit});
        break;
      case Entry::Kind::kHistogram: {
        const LatencyHistogram::Summary s = e.hist->summary();
        const std::string base = prefix + e.name;
        out.rows.push_back({base + ".count", static_cast<double>(s.count), "count"});
        out.rows.push_back({base + ".mean", s.mean * e.scale, e.unit});
        out.rows.push_back({base + ".p50", s.p50 * e.scale, e.unit});
        out.rows.push_back({base + ".p95", s.p95 * e.scale, e.unit});
        out.rows.push_back({base + ".p99", s.p99 * e.scale, e.unit});
        out.rows.push_back({base + ".max", s.max * e.scale, e.unit});
        break;
      }
      case Entry::Kind::kFn:
        out.rows.push_back({prefix + e.name, e.fn(), e.unit});
        break;
      case Entry::Kind::kSub:
        e.sub->collect(prefix + e.name, out);
        break;
    }
  }
}

void MetricsRegistry::collect_names(const std::string& prefix,
                                    std::vector<std::string>& out) const {
  for (const Entry& e : entries_) {
    switch (e.kind) {
      case Entry::Kind::kHistogram:
        for (const char* suffix :
             {".count", ".mean", ".p50", ".p95", ".p99", ".max"})
          out.push_back(prefix + e.name + suffix);
        break;
      case Entry::Kind::kSub:
        e.sub->collect_names(prefix + e.name, out);
        break;
      default:
        out.push_back(prefix + e.name);
        break;
    }
  }
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot out;
  collect("", out);
  return out;
}

std::vector<std::string> MetricsRegistry::names() const {
  std::vector<std::string> out;
  collect_names("", out);
  return out;
}

}  // namespace apc::obs
