#include "io/line_parse.hpp"

#include <charconv>
#include <sstream>

namespace apc::io {

void parse_fail(std::size_t line, const std::string& msg) {
  throw Error(ErrorCode::kParse, "line " + std::to_string(line) + ": " + msg);
}

bool valid_utf8(const std::string& s) {
  const auto* p = reinterpret_cast<const unsigned char*>(s.data());
  const std::size_t n = s.size();
  for (std::size_t i = 0; i < n;) {
    const unsigned char c = p[i];
    std::size_t len;
    std::uint32_t cp;
    if (c < 0x80) {
      ++i;
      continue;
    } else if ((c & 0xE0) == 0xC0) {
      len = 2;
      cp = c & 0x1F;
    } else if ((c & 0xF0) == 0xE0) {
      len = 3;
      cp = c & 0x0F;
    } else if ((c & 0xF8) == 0xF0) {
      len = 4;
      cp = c & 0x07;
    } else {
      return false;
    }
    if (i + len > n) return false;
    for (std::size_t k = 1; k < len; ++k) {
      if ((p[i + k] & 0xC0) != 0x80) return false;
      cp = (cp << 6) | (p[i + k] & 0x3F);
    }
    if ((len == 2 && cp < 0x80) || (len == 3 && cp < 0x800) ||
        (len == 4 && cp < 0x10000))
      return false;  // overlong encoding
    if (cp > 0x10FFFF || (cp >= 0xD800 && cp <= 0xDFFF)) return false;
    i += len;
  }
  return true;
}

void check_line(const std::string& line, std::size_t lineno) {
  if (line.size() > kMaxLineBytes)
    parse_fail(lineno,
               "line exceeds " + std::to_string(kMaxLineBytes) + " bytes");
  if (!valid_utf8(line)) parse_fail(lineno, "invalid UTF-8 (binary data?)");
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) {
    if (tok[0] == '#') break;
    out.push_back(tok);
  }
  return out;
}

std::uint32_t parse_uint(const std::string& s, std::size_t line, const char* what,
                         std::uint64_t max) {
  std::uint64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (s.empty() || ec != std::errc{} || ptr != s.data() + s.size())
    parse_fail(line, std::string("bad ") + what + ": " + s);
  if (v > max)
    parse_fail(line, std::string(what) + " out of range (max " +
                         std::to_string(max) + "): " + s);
  return static_cast<std::uint32_t>(v);
}

std::uint64_t parse_hex64(const std::string& s, std::size_t line, const char* what) {
  std::uint64_t v = 0;
  const auto [ptr, ec] =
      std::from_chars(s.data(), s.data() + s.size(), v, 16);
  if (s.empty() || s.size() > 16 || ec != std::errc{} ||
      ptr != s.data() + s.size())
    parse_fail(line, std::string("bad ") + what + ": " + s);
  return v;
}

}  // namespace apc::io
