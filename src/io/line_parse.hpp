// Hardened helpers for line-oriented text protocols and file formats.
//
// Extracted from network_io.cpp so the TCP serving layer (src/server/) and
// the network-file reader parse with one set of rules: a 64 KiB line cap
// (anything longer is a binary blob or garbage, not a directive), structural
// UTF-8 validation, '#'-comment tokenization, and exception-free bounded
// integer parsing that rejects trailing garbage ("7abc") and out-of-range
// values instead of silently truncating.
//
// Every failure is a typed apc::Error(kParse) carrying a line number.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace apc::io {

/// Maximum accepted length of one input line, in bytes.
inline constexpr std::size_t kMaxLineBytes = 64 * 1024;

/// Throws apc::Error(kParse, "line <line>: <msg>").
[[noreturn]] void parse_fail(std::size_t line, const std::string& msg);

/// Structural UTF-8 scan (RFC 3629: no overlongs, no surrogates,
/// <= U+10FFFF).  Inputs are ASCII by convention; this admits UTF-8 names
/// but rejects raw binary — the classic "loaded the wrong file" failure.
bool valid_utf8(const std::string& s);

/// Enforces the line cap and UTF-8 validity; throws kParse otherwise.
void check_line(const std::string& line, std::size_t lineno);

/// Whitespace-splits `line`; a token starting with '#' ends the line.
std::vector<std::string> tokenize(const std::string& line);

/// Exception-free unsigned parse: the whole token must be digits and the
/// value must fit `max`.  Throws kParse with the line number otherwise.
std::uint32_t parse_uint(const std::string& s, std::size_t line, const char* what,
                         std::uint64_t max = 0xFFFFFFFFull);

/// Same contract for a full-width hexadecimal token (no "0x" prefix, 1-16
/// hex digits) — the wire form of packet-header words.
std::uint64_t parse_hex64(const std::string& s, std::size_t line, const char* what);

}  // namespace apc::io
