// Durable write-ahead log for rule/predicate updates (see
// docs/architecture.md, "Fault tolerance & durability").
//
// File layout:
//
//   +--------------------------------------------------+
//   | magic "APCWAL1\0" (8B) | version u32 | endian u32 |   file header
//   +--------------------------------------------------+
//   | len u32 | crc32c(payload) u32 (masked) | payload  |   record 0
//   +--------------------------------------------------+
//   | len u32 | crc u32 | payload                       |   record 1 ...
//   +--------------------------------------------------+
//
// All integers are native-endian; the endianness sentinel in the header
// rejects files written on a machine with the other byte order.  Payloads
// are opaque bytes (the reconstruction manager stores "A <key> <bdd>" /
// "R <key>" update records).
//
// Crash contract: open() replays the longest clean prefix — records whose
// frame is complete and whose CRC matches — and *durably truncates* any torn
// or corrupt tail, reporting what was dropped in WalRecoveryReport.  A torn
// tail is the expected artifact of a crash mid-append and is not an error;
// a damaged file *header* means the file is not a WAL at all and is rejected
// with apc::Error(kCorruptData).
//
// Failure contract: a *transient* write/fsync errno (EINTR, EAGAIN, ENOSPC,
// EDQUOT, ENOMEM — conditions that genuinely can clear on their own) is
// retried in place under the jittered backoff schedule in
// WalOptions::retry, with the file rolled back to the last clean record
// boundary between write attempts; each absorbed failure ticks the
// retries() counter.  Only once the budget is exhausted does append() throw
// apc::Error(kIo) — the log stays usable, so a caller can retry later.  A
// non-transient errno (EIO and friends) fails immediately: for fsync it
// also poisons the instance, because the kernel may have dropped the dirty
// pages while marking them clean (the PostgreSQL fsyncgate lesson — a
// "successful" retry after fsync-EIO proves nothing), and every later
// append throws kFailedPrecondition.  Exhausting the retry budget on fsync
// poisons for the same reason.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "util/backoff.hpp"
#include "util/error.hpp"

namespace apc::io {

/// When appends reach the disk platter.
enum class FsyncPolicy : std::uint8_t {
  kNone,         ///< never fsync (fastest; crash loses OS-buffered tail)
  kInterval,     ///< fsync every WalOptions::fsync_interval records
  kEveryRecord,  ///< fsync after every append (group-commit durability)
};

const char* fsync_policy_name(FsyncPolicy p);
/// Parses "none" / "interval" / "every"; throws apc::Error(kParse) otherwise.
FsyncPolicy parse_fsync_policy(std::string_view name);

struct WalOptions {
  FsyncPolicy fsync_policy = FsyncPolicy::kEveryRecord;
  /// Records between fsyncs under FsyncPolicy::kInterval.
  std::size_t fsync_interval = 32;
  /// Backoff schedule for transient append/fsync failures (see the failure
  /// contract above).  Defaults absorb ~4 retries over ~10 ms; max_retries=0
  /// restores fail-fast behavior.
  util::BackoffPolicy retry{std::chrono::microseconds{500},
                            std::chrono::microseconds{20000}, 2.0, 0.25, 4};
};

/// What recovery found and did when opening an existing log.
struct WalRecoveryReport {
  bool existed = false;               ///< a non-empty file was present
  std::size_t records_recovered = 0;  ///< clean records replayed
  std::uint64_t bytes_scanned = 0;    ///< file size before truncation
  std::uint64_t bytes_truncated = 0;  ///< torn/corrupt tail removed
  bool torn_tail = false;             ///< tail was an incomplete frame
  bool crc_mismatch = false;          ///< tail failed its checksum
  std::string detail;                 ///< one-line human-readable summary
};

class Wal {
 public:
  /// Opens (creating if absent) the log at `path`.  Existing clean records
  /// are appended to `*records` (in order); a torn/corrupt tail is durably
  /// truncated and described in `*report`.  Throws apc::Error(kIo) on
  /// filesystem failure and kCorruptData on a damaged file header.
  Wal(const std::string& path, WalOptions opts,
      std::vector<std::string>* records = nullptr,
      WalRecoveryReport* report = nullptr);
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Appends one record and applies the fsync policy.  Transient failures
  /// retry in place under WalOptions::retry; on definitive failure the file
  /// is rolled back to the previous record boundary and apc::Error(kIo) is
  /// thrown; the log remains usable unless an fsync failed.
  void append(std::string_view payload);

  /// Explicit fsync (for FsyncPolicy::kNone users at checkpoint moments).
  void sync();

  const std::string& path() const { return path_; }
  /// Records appended through this instance (not counting recovered ones).
  const obs::Counter& records_appended() const { return records_appended_; }
  /// fsync() calls issued (policy-driven and explicit).
  const obs::Counter& syncs() const { return syncs_; }
  /// Transient write/fsync failures absorbed by the retry loop.
  const obs::Counter& retries() const { return retries_; }
  /// Current clean end-of-log offset in bytes.
  std::uint64_t size_bytes() const { return offset_; }
  /// The recovery report from open time.
  const WalRecoveryReport& recovery_report() const { return report_; }
  /// True after an fsync failure: appends are refused (kFailedPrecondition).
  bool poisoned() const { return poisoned_; }

 private:
  /// One write attempt (fault sites included); returns 0 or the errno.
  int try_write(const char* p, std::size_t n);
  /// try_write that throws on any failure (header writes; no retry).
  void write_all(const char* p, std::size_t n);
  void do_fsync(const char* site);

  std::string path_;
  WalOptions opts_;
  int fd_ = -1;
  std::uint64_t offset_ = 0;  ///< clean end of log
  std::size_t unsynced_records_ = 0;
  bool poisoned_ = false;
  WalRecoveryReport report_;

  obs::Counter records_appended_;
  obs::Counter syncs_;
  obs::Counter retries_;
};

}  // namespace apc::io
