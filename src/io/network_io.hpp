// Text serialization of NetworkModel — the interchange format for feeding
// real data-plane snapshots (FIB dumps + ACLs) into AP Classifier, and for
// persisting generated datasets.
//
// Line-oriented format (comments start with '#'):
//
//   box <name>
//   link <boxA> <boxB>                  # creates one port on each, wired
//   hostport <box> [name]               # edge port
//   fib <box> <prefix> <port-index> [priority]
//   mcast <box> <group-prefix> <port-index> [<port-index>...]
//   acl <in|out> <box> <port-index> default <permit|deny>
//   aclrule <in|out> <box> <port-index> <permit|deny>
//       src <prefix> dst <prefix> sport <lo>-<hi> dport <lo>-<hi> proto <n|any>
//
// Port indices follow creation order (links first as listed, then host
// ports), which round-trips with the writer.  `aclrule` lines append to the
// ACL declared by the preceding `acl` line for the same port.
#pragma once

#include <iosfwd>
#include <string>

#include "network/model.hpp"

namespace apc::io {

/// Parses a network description; throws apc::Error with a line number on
/// malformed input.
NetworkModel read_network(std::istream& in);
NetworkModel read_network_file(const std::string& path);
NetworkModel read_network_string(const std::string& text);

/// Writes a description that read_network() round-trips.
void write_network(const NetworkModel& net, std::ostream& out);
std::string write_network_string(const NetworkModel& net);
void write_network_file(const NetworkModel& net, const std::string& path);

}  // namespace apc::io
