#include "io/network_io.hpp"

#include <fstream>
#include <map>
#include <sstream>

#include "io/line_parse.hpp"
#include "packet/ipv4.hpp"

namespace apc::io {

namespace {

// Line cap, UTF-8 validation, tokenization, and bounded integer parsing are
// shared with the TCP serving protocol — see io/line_parse.hpp.

[[noreturn]] void fail(std::size_t line, const std::string& msg) {
  throw Error(ErrorCode::kParse,
              "network file line " + std::to_string(line) + ": " + msg);
}

PortRange parse_range(const std::string& s, std::size_t line) {
  const std::size_t dash = s.find('-');
  if (dash == std::string::npos) fail(line, "bad port range: " + s);
  PortRange r;
  r.lo = static_cast<std::uint16_t>(
      parse_uint(s.substr(0, dash), line, "port", 0xFFFF));
  r.hi = static_cast<std::uint16_t>(
      parse_uint(s.substr(dash + 1), line, "port", 0xFFFF));
  if (r.lo > r.hi) fail(line, "inverted port range: " + s);
  return r;
}

}  // namespace

NetworkModel read_network(std::istream& in) {
  NetworkModel net;
  std::map<std::string, BoxId> boxes;
  std::string line;
  std::size_t lineno = 0;

  const auto box_of = [&](const std::string& name, std::size_t ln) {
    const auto it = boxes.find(name);
    if (it == boxes.end()) fail(ln, "unknown box: " + name);
    return it->second;
  };

  bool saw_directive = false;
  while (std::getline(in, line)) {
    ++lineno;
    check_line(line, lineno);
    const auto tok = tokenize(line);
    if (tok.empty()) continue;
    saw_directive = true;
    const std::string& cmd = tok[0];

    if (cmd == "box") {
      if (tok.size() != 2) fail(lineno, "usage: box <name>");
      if (boxes.count(tok[1])) fail(lineno, "duplicate box: " + tok[1]);
      boxes[tok[1]] = net.topology.add_box(tok[1]);
    } else if (cmd == "link") {
      if (tok.size() != 3) fail(lineno, "usage: link <boxA> <boxB>");
      net.topology.add_link(box_of(tok[1], lineno), box_of(tok[2], lineno));
    } else if (cmd == "hostport") {
      if (tok.size() != 2 && tok.size() != 3) fail(lineno, "usage: hostport <box> [name]");
      net.topology.add_host_port(box_of(tok[1], lineno),
                                 tok.size() == 3 ? tok[2] : "");
    } else if (cmd == "fib") {
      if (tok.size() != 4 && tok.size() != 5)
        fail(lineno, "usage: fib <box> <prefix> <port> [priority]");
      const BoxId b = box_of(tok[1], lineno);
      Ipv4Prefix prefix;
      try {
        prefix = parse_prefix(tok[2]);
      } catch (const Error& e) {
        fail(lineno, e.what());
      }
      const std::uint32_t port = parse_uint(tok[3], lineno, "port index");
      const std::int32_t prio =
          tok.size() == 5 ? static_cast<std::int32_t>(parse_uint(tok[4], lineno, "priority"))
                          : -1;
      net.fib(b).add(prefix, port, prio);
    } else if (cmd == "flowrule") {
      // flowrule <box> <priority> <forward <port>|drop>
      //          { exact <off> <w> <val> | prefix <off> <w> <val> <len>
      //          | range <off> <w> <lo> <hi> }*
      if (tok.size() < 4) fail(lineno, "flowrule: too few tokens");
      const BoxId b = box_of(tok[1], lineno);
      FlowRule r;
      r.priority = static_cast<std::int32_t>(parse_uint(tok[2], lineno, "priority"));
      std::size_t i = 3;
      if (tok[i] == "forward") {
        if (i + 1 >= tok.size()) fail(lineno, "flowrule: forward needs a port");
        r.action = FlowRule::Action::Forward;
        r.egress_port = parse_uint(tok[i + 1], lineno, "port index");
        i += 2;
      } else if (tok[i] == "drop") {
        r.action = FlowRule::Action::Drop;
        ++i;
      } else {
        fail(lineno, "flowrule: expected forward|drop, got " + tok[i]);
      }
      while (i < tok.size()) {
        FieldMatch m;
        const std::string& kind = tok[i];
        const auto need = [&](std::size_t n) {
          if (i + n >= tok.size()) fail(lineno, "flowrule: truncated " + kind);
        };
        if (kind == "exact") {
          need(3);
          m.kind = FieldMatch::Kind::Exact;
          m.offset = parse_uint(tok[i + 1], lineno, "offset");
          m.width = parse_uint(tok[i + 2], lineno, "width");
          m.value = parse_uint(tok[i + 3], lineno, "value");
          i += 4;
        } else if (kind == "prefix") {
          need(4);
          m.kind = FieldMatch::Kind::Prefix;
          m.offset = parse_uint(tok[i + 1], lineno, "offset");
          m.width = parse_uint(tok[i + 2], lineno, "width");
          m.value = parse_uint(tok[i + 3], lineno, "value");
          m.prefix_len = parse_uint(tok[i + 4], lineno, "prefix length");
          i += 5;
        } else if (kind == "range") {
          need(4);
          m.kind = FieldMatch::Kind::Range;
          m.offset = parse_uint(tok[i + 1], lineno, "offset");
          m.width = parse_uint(tok[i + 2], lineno, "width");
          m.lo = parse_uint(tok[i + 3], lineno, "lo");
          m.hi = parse_uint(tok[i + 4], lineno, "hi");
          i += 5;
        } else {
          fail(lineno, "flowrule: unknown match kind " + kind);
        }
        r.matches.push_back(m);
      }
      net.flow_tables[b].add(std::move(r));
    } else if (cmd == "mcast") {
      if (tok.size() < 4) fail(lineno, "usage: mcast <box> <group-prefix> <port>...");
      const BoxId b = box_of(tok[1], lineno);
      MulticastRule r;
      try {
        r.group = parse_prefix(tok[2]);
      } catch (const Error& e) {
        fail(lineno, e.what());
      }
      for (std::size_t i = 3; i < tok.size(); ++i)
        r.ports.push_back(parse_uint(tok[i], lineno, "port index"));
      net.multicast[b].push_back(std::move(r));
    } else if (cmd == "acl") {
      if (tok.size() != 6 || tok[4] != "default")
        fail(lineno, "usage: acl <in|out> <box> <port> default <permit|deny>");
      const BoxId b = box_of(tok[2], lineno);
      const std::uint32_t port = parse_uint(tok[3], lineno, "port index");
      Acl acl;
      if (tok[5] == "permit")
        acl.default_action = AclRule::Action::Permit;
      else if (tok[5] == "deny")
        acl.default_action = AclRule::Action::Deny;
      else
        fail(lineno, "bad default action: " + tok[5]);
      if (tok[1] == "in")
        net.input_acls[{b, port}] = acl;
      else if (tok[1] == "out")
        net.output_acls[{b, port}] = acl;
      else
        fail(lineno, "acl direction must be in|out");
    } else if (cmd == "aclrule") {
      // aclrule <in|out> <box> <port> <permit|deny> src P dst P sport lo-hi
      //         dport lo-hi proto n|any
      if (tok.size() != 15) fail(lineno, "aclrule: expected 15 tokens");
      const BoxId b = box_of(tok[2], lineno);
      const std::uint32_t port = parse_uint(tok[3], lineno, "port index");
      AclRule r;
      if (tok[4] == "permit")
        r.action = AclRule::Action::Permit;
      else if (tok[4] == "deny")
        r.action = AclRule::Action::Deny;
      else
        fail(lineno, "bad action: " + tok[4]);
      if (tok[5] != "src" || tok[7] != "dst" || tok[9] != "sport" ||
          tok[11] != "dport" || tok[13] != "proto")
        fail(lineno, "aclrule: bad field labels");
      try {
        r.src = parse_prefix(tok[6]);
        r.dst = parse_prefix(tok[8]);
      } catch (const Error& e) {
        fail(lineno, e.what());
      }
      r.src_port = parse_range(tok[10], lineno);
      r.dst_port = parse_range(tok[12], lineno);
      if (tok[14] != "any")
        r.proto = static_cast<std::uint8_t>(parse_uint(tok[14], lineno, "proto", 0xFF));

      auto& acls = tok[1] == "in" ? net.input_acls : net.output_acls;
      const auto it = acls.find({b, port});
      if (it == acls.end())
        fail(lineno, "aclrule before matching acl declaration");
      it->second.rules.push_back(r);
    } else {
      fail(lineno, "unknown directive: " + cmd);
    }
  }
  require(saw_directive, ErrorCode::kParse,
          "network file: empty (no directives)");
  net.ensure_fibs();
  net.validate();
  return net;
}

NetworkModel read_network_file(const std::string& path) {
  std::ifstream in(path);
  if (!in.good())
    throw Error(ErrorCode::kIo, "read_network_file: cannot open " + path);
  return read_network(in);
}

NetworkModel read_network_string(const std::string& text) {
  std::istringstream is(text);
  return read_network(is);
}

void write_network(const NetworkModel& net, std::ostream& out) {
  const Topology& topo = net.topology;
  // The reader recreates ports in file order: all links, then host ports.
  // Round-tripping therefore requires every box's link ports to precede its
  // host ports (true for all builders in this repo); reject otherwise so a
  // silent port-index skew cannot happen.
  for (const Box& b : topo.boxes()) {
    bool seen_host = false;
    for (const Port& p : b.ports) {
      if (p.kind == Port::Kind::Host) seen_host = true;
      require(!(seen_host && p.kind == Port::Kind::Link),
              "write_network: host port precedes a link port; port indices "
              "would not round-trip");
    }
  }
  out << "# apc network file\n";
  for (const Box& b : topo.boxes()) out << "box " << b.name << "\n";

  // Links: the reader replays `link` lines sequentially, so the emission
  // order must be consistent with every box's own port order.  Greedily
  // emit a link only when it is the next pending link port on BOTH of its
  // endpoints (the original add_link() sequence always satisfies this).
  {
    std::vector<std::uint32_t> next_port(topo.box_count(), 0);
    const auto skip_non_links = [&](BoxId b) {
      const auto& ports = topo.boxes()[b].ports;
      while (next_port[b] < ports.size() &&
             ports[next_port[b]].kind != Port::Kind::Link)
        ++next_port[b];
    };
    for (BoxId b = 0; b < topo.box_count(); ++b) skip_non_links(b);
    while (true) {
      bool emitted = false;
      bool pending = false;
      for (BoxId b = 0; b < topo.box_count(); ++b) {
        const auto& ports = topo.boxes()[b].ports;
        if (next_port[b] >= ports.size()) continue;
        pending = true;
        const Port& p = ports[next_port[b]];
        const PortId peer = *p.peer;
        if (next_port[peer.box] < topo.boxes()[peer.box].ports.size() &&
            next_port[peer.box] == peer.port) {
          out << "link " << topo.boxes()[b].name << " "
              << topo.boxes()[peer.box].name << "\n";
          ++next_port[b];
          skip_non_links(b);
          ++next_port[peer.box];
          skip_non_links(peer.box);
          emitted = true;
        }
      }
      if (!pending) break;
      require(emitted, "write_network: link port order is not serializable");
    }
  }
  for (BoxId b = 0; b < topo.box_count(); ++b) {
    const Box& box = topo.boxes()[b];
    for (const Port& p : box.ports) {
      if (p.kind == Port::Kind::Host) out << "hostport " << box.name << " " << p.name << "\n";
    }
  }
  for (BoxId b = 0; b < net.fibs.size(); ++b) {
    for (const auto& r : net.fibs[b].rules) {
      out << "fib " << topo.boxes()[b].name << " " << format_prefix(r.dst) << " "
          << r.egress_port;
      if (r.priority >= 0) out << " " << r.priority;
      out << "\n";
    }
  }
  for (const auto& [b, table] : net.flow_tables) {
    for (const auto& r : table.rules) {
      out << "flowrule " << topo.boxes()[b].name << " " << r.priority << " ";
      if (r.action == FlowRule::Action::Forward)
        out << "forward " << r.egress_port;
      else
        out << "drop";
      for (const auto& m : r.matches) {
        switch (m.kind) {
          case FieldMatch::Kind::Exact:
            out << " exact " << m.offset << " " << m.width << " " << m.value;
            break;
          case FieldMatch::Kind::Prefix:
            out << " prefix " << m.offset << " " << m.width << " " << m.value << " "
                << m.prefix_len;
            break;
          case FieldMatch::Kind::Range:
            out << " range " << m.offset << " " << m.width << " " << m.lo << " "
                << m.hi;
            break;
        }
      }
      out << "\n";
    }
  }
  for (const auto& [b, rules] : net.multicast) {
    for (const auto& r : rules) {
      out << "mcast " << topo.boxes()[b].name << " " << format_prefix(r.group);
      for (const std::uint32_t p : r.ports) out << " " << p;
      out << "\n";
    }
  }
  const auto dump_acl = [&](const char* dir, const std::pair<BoxId, std::uint32_t>& key,
                            const Acl& acl) {
    out << "acl " << dir << " " << topo.boxes()[key.first].name << " " << key.second
        << " default "
        << (acl.default_action == AclRule::Action::Permit ? "permit" : "deny") << "\n";
    for (const auto& r : acl.rules) {
      out << "aclrule " << dir << " " << topo.boxes()[key.first].name << " "
          << key.second << " "
          << (r.action == AclRule::Action::Permit ? "permit" : "deny") << " src "
          << format_prefix(r.src) << " dst " << format_prefix(r.dst) << " sport "
          << r.src_port.lo << "-" << r.src_port.hi << " dport " << r.dst_port.lo << "-"
          << r.dst_port.hi << " proto ";
      if (r.proto)
        out << static_cast<int>(*r.proto);
      else
        out << "any";
      out << "\n";
    }
  };
  for (const auto& [key, acl] : net.input_acls) dump_acl("in", key, acl);
  for (const auto& [key, acl] : net.output_acls) dump_acl("out", key, acl);
}

std::string write_network_string(const NetworkModel& net) {
  std::ostringstream os;
  write_network(net, os);
  return os.str();
}

void write_network_file(const NetworkModel& net, const std::string& path) {
  std::ofstream out(path);
  require(out.good(), "write_network_file: cannot open file");
  write_network(net, out);
}

}  // namespace apc::io
