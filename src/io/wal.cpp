#include "io/wal.hpp"

#include <cerrno>
#include <cstring>
#include <functional>
#include <thread>

#include <fcntl.h>
#include <unistd.h>

#include "util/backoff.hpp"
#include "util/crc32c.hpp"
#include "util/fault_injection.hpp"

namespace apc::io {

namespace {

constexpr char kMagic[8] = {'A', 'P', 'C', 'W', 'A', 'L', '1', '\0'};
constexpr std::uint32_t kVersion = 1;
constexpr std::uint32_t kEndianSentinel = 0x01020304u;
constexpr std::uint64_t kHeaderBytes = sizeof(kMagic) + 2 * sizeof(std::uint32_t);
/// Frame-length sanity bound: a length field above this is treated as tail
/// corruption (a torn write can scribble the length), not as a real record.
constexpr std::uint32_t kMaxRecordBytes = 64u << 20;

[[noreturn]] void fail_io(const std::string& what, int err) {
  throw Error(ErrorCode::kIo,
              what + ": " + std::strerror(err) + " (errno " + std::to_string(err) + ")");
}

/// Errnos worth retrying under backoff: conditions that can genuinely clear
/// on their own (signal, contention, space freed, quota raised, memory
/// reclaimed).  EIO is deliberately absent — after a write-back EIO the
/// kernel may have dropped the dirty pages while marking them clean, so a
/// retry that "succeeds" proves nothing about the lost data (fsyncgate).
bool transient_errno(int err) {
  return err == EINTR || err == EAGAIN || err == ENOSPC || err == EDQUOT ||
         err == ENOMEM;
}

void put_u32(std::string& out, std::uint32_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint32_t get_u32(const std::string& buf, std::uint64_t off) {
  std::uint32_t v;
  std::memcpy(&v, buf.data() + off, sizeof(v));
  return v;
}

/// Reads the whole file through `fd` (which recovery just opened).
std::string read_file(int fd, const std::string& path) {
  std::string out;
  char buf[1 << 16];
  for (;;) {
    if (const int err = util::fault_errno("wal.recover.read"))
      fail_io("wal: read " + path, err);
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      fail_io("wal: read " + path, errno);
    }
    if (n == 0) return out;
    out.append(buf, static_cast<std::size_t>(n));
  }
}

/// Fsyncs the directory containing `path`.  O_CREAT makes the file durable
/// only once its directory entry is — a log created, fsynced, and lost to a
/// power cut before the directory block hits disk silently vanishes, taking
/// every acked record with it.  Called once, at fresh-log creation (an
/// existing log's entry is already durable).  Filesystems that refuse
/// directory fsync (EINVAL on some network mounts) are tolerated; real
/// write-back errors propagate.
void fsync_parent_dir(const std::string& path) {
  if (const int err = util::fault_errno("wal.create.dirsync"))
    fail_io("wal: fsync parent dir of " + path, err);
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int dfd = ::open(dir.empty() ? "/" : dir.c_str(), O_RDONLY | O_CLOEXEC);
  if (dfd < 0) return;  // not all filesystems allow opening a dir for fsync
  if (::fsync(dfd) != 0 && errno != EINVAL && errno != EROFS) {
    const int err = errno;
    ::close(dfd);
    fail_io("wal: fsync dir " + dir, err);
  }
  ::close(dfd);
}

}  // namespace

const char* fsync_policy_name(FsyncPolicy p) {
  switch (p) {
    case FsyncPolicy::kNone: return "none";
    case FsyncPolicy::kInterval: return "interval";
    case FsyncPolicy::kEveryRecord: return "every";
  }
  return "unknown";
}

FsyncPolicy parse_fsync_policy(std::string_view name) {
  if (name == "none") return FsyncPolicy::kNone;
  if (name == "interval") return FsyncPolicy::kInterval;
  if (name == "every") return FsyncPolicy::kEveryRecord;
  throw Error(ErrorCode::kParse,
              "unknown fsync policy '" + std::string(name) + "' (none|interval|every)");
}

Wal::Wal(const std::string& path, WalOptions opts, std::vector<std::string>* records,
         WalRecoveryReport* report)
    : path_(path), opts_(opts) {
  require(!path.empty(), ErrorCode::kInvalidArgument, "Wal: empty path");
  if (const int err = util::fault_errno("wal.open")) fail_io("wal: open " + path, err);
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) fail_io("wal: open " + path, errno);

  std::string buf = read_file(fd_, path);
  report_.bytes_scanned = buf.size();
  report_.existed = !buf.empty();

  // The full header image, for the fresh-file write and the torn-creation
  // prefix check below.
  std::string hdr(kMagic, sizeof(kMagic));
  put_u32(hdr, kVersion);
  put_u32(hdr, kEndianSentinel);

  // A file shorter than the header that matches a *prefix* of it is the
  // artifact of a crash between creation and the header fsync — rewrite it
  // as a fresh log.  A short file that does not match is foreign data.
  const bool torn_creation =
      !buf.empty() && buf.size() < kHeaderBytes &&
      std::memcmp(buf.data(), hdr.data(), buf.size()) == 0;

  if (buf.empty() || torn_creation) {
    if (torn_creation) {
      report_.torn_tail = true;
      report_.bytes_truncated = buf.size();
      if (::ftruncate(fd_, 0) != 0) fail_io("wal: truncate " + path, errno);
      if (::lseek(fd_, 0, SEEK_SET) < 0) fail_io("wal: seek " + path, errno);
    }
    // Fresh log: write and persist the file header, then the directory
    // entry — without the dirsync the whole log can vanish on power loss.
    write_all(hdr.data(), hdr.size());
    offset_ = kHeaderBytes;
    do_fsync("wal.append.fsync");
    fsync_parent_dir(path);
  } else {
    // A file header is all-or-nothing: it is written+fsynced before any
    // record, so a damaged one means this is not (or no longer) a WAL.
    if (buf.size() < kHeaderBytes ||
        std::memcmp(buf.data(), kMagic, sizeof(kMagic)) != 0)
      throw Error(ErrorCode::kCorruptData, "wal: bad magic in " + path);
    const std::uint32_t version = get_u32(buf, sizeof(kMagic));
    if (version != kVersion)
      throw Error(ErrorCode::kCorruptData,
                  "wal: unsupported version " + std::to_string(version) + " in " + path);
    if (get_u32(buf, sizeof(kMagic) + 4) != kEndianSentinel)
      throw Error(ErrorCode::kCorruptData, "wal: endianness mismatch in " + path);

    // Replay the longest clean prefix of record frames.
    std::uint64_t off = kHeaderBytes;
    while (off < buf.size()) {
      if (buf.size() - off < 8) {  // torn frame header
        report_.torn_tail = true;
        break;
      }
      const std::uint32_t len = get_u32(buf, off);
      const std::uint32_t stored_crc = util::crc32c_unmask(get_u32(buf, off + 4));
      if (len > kMaxRecordBytes) {  // scribbled length field
        report_.torn_tail = true;
        break;
      }
      if (buf.size() - off - 8 < len) {  // torn payload
        report_.torn_tail = true;
        break;
      }
      if (util::crc32c(buf.data() + off + 8, len) != stored_crc) {
        report_.crc_mismatch = true;
        break;
      }
      if (records != nullptr) records->emplace_back(buf.data() + off + 8, len);
      ++report_.records_recovered;
      off += 8 + len;
    }
    offset_ = off;
    if (off < buf.size()) {
      // Durably drop the torn/corrupt tail so the next append starts at a
      // clean record boundary.
      report_.bytes_truncated = buf.size() - off;
      if (::ftruncate(fd_, static_cast<off_t>(off)) != 0)
        fail_io("wal: truncate " + path, errno);
      do_fsync("wal.append.fsync");
      if (::lseek(fd_, static_cast<off_t>(off), SEEK_SET) < 0)
        fail_io("wal: seek " + path, errno);
    }
  }

  report_.detail = "recovered " + std::to_string(report_.records_recovered) +
                   " record(s), truncated " + std::to_string(report_.bytes_truncated) +
                   " byte(s)" + (report_.crc_mismatch ? " [crc mismatch]" : "") +
                   (report_.torn_tail ? " [torn tail]" : "");
  if (report != nullptr) *report = report_;
}

Wal::~Wal() {
  if (fd_ >= 0) ::close(fd_);
}

int Wal::try_write(const char* p, std::size_t n) {
  std::size_t cap = n;
  if (const int err = util::fault_errno("wal.append.write", &cap)) return err;
  const bool short_write = cap < n;  // injected torn write: persist a prefix
  std::size_t left = short_write ? cap : n;
  while (left > 0) {
    const ssize_t w = ::write(fd_, p, left);
    if (w < 0) {
      if (errno == EINTR) continue;
      return errno;
    }
    p += w;
    left -= static_cast<std::size_t>(w);
  }
  // A torn write leaves garbage past the record boundary; surface it as the
  // non-transient EIO so the caller rolls back instead of retrying blind.
  return short_write ? EIO : 0;
}

void Wal::write_all(const char* p, std::size_t n) {
  if (const int err = try_write(p, n)) fail_io("wal: write " + path_, err);
}

void Wal::do_fsync(const char* site) {
  util::Backoff backoff(opts_.retry, std::hash<std::string>{}(path_) ^ offset_);
  for (;;) {
    int err = util::fault_errno(site);
    if (err == 0 && ::fsync(fd_) != 0) err = errno;
    if (err == 0) break;
    if (!transient_errno(err) || backoff.exhausted()) {
      poisoned_ = true;  // durability of acked records is now unknown
      fail_io("wal: fsync " + path_, err);
    }
    retries_.add(1);
    std::this_thread::sleep_for(backoff.next_delay());
  }
  syncs_.add(1);
  unsynced_records_ = 0;
}

void Wal::append(std::string_view payload) {
  require(!poisoned_, ErrorCode::kFailedPrecondition,
          "Wal::append after fsync failure: durability unknown, reopen the log");
  require(payload.size() <= kMaxRecordBytes, ErrorCode::kInvalidArgument,
          "Wal::append: record too large");
  std::string frame;
  frame.reserve(8 + payload.size());
  put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  put_u32(frame, util::crc32c_mask(util::crc32c(payload.data(), payload.size())));
  frame.append(payload.data(), payload.size());
  util::Backoff backoff(opts_.retry, std::hash<std::string>{}(path_) ^ offset_);
  for (;;) {
    const int err = try_write(frame.data(), frame.size());
    if (err == 0) break;
    // Roll back to the last clean record boundary so the failed (possibly
    // torn) frame never pollutes the log — both between retry attempts and
    // before surfacing the failure to the caller.
    if (::ftruncate(fd_, static_cast<off_t>(offset_)) == 0) {
      ::lseek(fd_, static_cast<off_t>(offset_), SEEK_SET);
    } else {
      poisoned_ = true;  // can't restore a clean boundary
      fail_io("wal: write " + path_, err);
    }
    if (!transient_errno(err) || backoff.exhausted())
      fail_io("wal: write " + path_, err);
    retries_.add(1);
    std::this_thread::sleep_for(backoff.next_delay());
  }
  offset_ += frame.size();
  records_appended_.add(1);
  ++unsynced_records_;
  if (opts_.fsync_policy == FsyncPolicy::kEveryRecord ||
      (opts_.fsync_policy == FsyncPolicy::kInterval &&
       unsynced_records_ >= opts_.fsync_interval)) {
    do_fsync("wal.append.fsync");
  }
}

void Wal::sync() {
  require(!poisoned_, ErrorCode::kFailedPrecondition,
          "Wal::sync after fsync failure: reopen the log");
  do_fsync("wal.append.fsync");
}

}  // namespace apc::io
