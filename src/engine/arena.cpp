#include "engine/arena.hpp"

#include <cstdlib>
#include <cstring>

// The mmap path is POSIX-only and can be compiled out to prove the fallback
// (CMake option APC_FORCE_NO_MMAP, exercised by a dedicated CI job).
#if !defined(APC_FORCE_NO_MMAP) && defined(__unix__)
#define APC_HAVE_MMAP 1
#include <sys/mman.h>
#include <unistd.h>
#else
#define APC_HAVE_MMAP 0
#endif

namespace apc::engine {

Arena::~Arena() {
  if (storage_ == Storage::kOwned) {
    std::free(const_cast<std::byte*>(base_));
  } else {
#if APC_HAVE_MMAP
    if (map_addr_ != nullptr) ::munmap(map_addr_, map_len_);
#endif
  }
}

std::shared_ptr<const Arena> Arena::adopt_owned(void* buf, std::size_t size) {
  auto a = std::shared_ptr<Arena>(new Arena());
  a->base_ = static_cast<const std::byte*>(buf);
  a->size_ = size;
  a->storage_ = Storage::kOwned;
  return a;
}

bool Arena::mmap_supported() { return APC_HAVE_MMAP != 0; }

std::shared_ptr<const Arena> Arena::map_file(int fd, std::size_t file_offset,
                                             std::size_t len) {
#if APC_HAVE_MMAP
  const std::size_t page = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  require(file_offset % page == 0, ErrorCode::kInvalidArgument,
          "Arena::map_file: offset not page-aligned");
  // Map from file offset 0 so any page size works; the arena base is the
  // page-aligned map plus the (page-multiple) header offset.
  const std::size_t map_len = file_offset + len;
  void* addr = ::mmap(nullptr, map_len, PROT_READ, MAP_PRIVATE, fd, 0);
  if (addr == MAP_FAILED)
    throw Error(ErrorCode::kIo, std::string("Arena::map_file: mmap: ") +
                                    std::strerror(errno));
  auto a = std::shared_ptr<Arena>(new Arena());
  a->map_addr_ = addr;
  a->map_len_ = map_len;
  a->base_ = static_cast<const std::byte*>(addr) + file_offset;
  a->size_ = len;
  a->storage_ = Storage::kMapped;
  return a;
#else
  (void)fd;
  (void)file_offset;
  (void)len;
  throw Error(ErrorCode::kUnavailable, "Arena::map_file: mmap compiled out");
#endif
}

void Arena::prefault(const ArenaRef& r, std::size_t elem_size) const {
#if APC_HAVE_MMAP
  if (storage_ != Storage::kMapped || r.count == 0) return;
  const std::size_t page = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  const std::uintptr_t begin =
      reinterpret_cast<std::uintptr_t>(base_ + r.off) & ~(page - 1);
  const std::uintptr_t end =
      reinterpret_cast<std::uintptr_t>(base_ + r.off + r.count * elem_size);
  ::madvise(reinterpret_cast<void*>(begin), end - begin, MADV_WILLNEED);
#else
  (void)r;
  (void)elem_size;
#endif
}

void Arena::prefault_all() const {
#if APC_HAVE_MMAP
  if (storage_ != Storage::kMapped) return;
  ::madvise(map_addr_, map_len_, MADV_WILLNEED);
#endif
}

ArenaBuilder::~ArenaBuilder() { std::free(buf_); }

void ArenaBuilder::allocate() {
  require(buf_ == nullptr, "ArenaBuilder: allocate twice");
  // aligned_alloc wants the size to be a multiple of the alignment; the
  // cursor already is (reserve() rounds).
  size_ = cursor_;
  buf_ = std::aligned_alloc(Arena::kAlign, size_);
  require(buf_ != nullptr, ErrorCode::kResourceExhausted,
          "ArenaBuilder: allocation failed");
  std::memset(buf_, 0, size_);
  ArenaHeader& h = *static_cast<ArenaHeader*>(buf_);
  std::memcpy(h.magic, ArenaHeader::kMagic, sizeof(h.magic));
  h.layout_version = ArenaHeader::kLayoutVersion;
  h.arena_bytes = size_;
}

std::shared_ptr<const Arena> ArenaBuilder::finish() {
  require(buf_ != nullptr, "ArenaBuilder: finish before allocate");
  void* buf = buf_;
  const std::size_t size = size_;
  buf_ = nullptr;
  size_ = 0;
  return Arena::adopt_owned(buf, size);
}

}  // namespace apc::engine
