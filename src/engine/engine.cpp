#include "engine/engine.hpp"

#include <algorithm>
#include <array>
#include <chrono>

#include "util/stats.hpp"

namespace apc::engine {

namespace {
/// Worker-thread resolution for batch fan-out.  The calling thread always
/// participates, so `hardware_concurrency - 1` workers means total batch
/// parallelism equals hardware_concurrency — the repo-wide meaning of
/// "threads = 0".  Explicit requests are honored as given, uncapped.
std::size_t default_threads(std::size_t requested) {
  if (requested > 0) return requested;
  return util::TaskPool::resolve_threads(0) - 1;
}

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

FlatSnapshot::Options snapshot_options(const QueryEngine::Options& o) {
  FlatSnapshot::Options so;
  so.behavior_table_budget = o.behavior_table_budget;
  so.header_cache_capacity = o.header_cache_capacity;
  so.header_cache_shards = o.header_cache_shards;
  so.compile_program = o.compile_program;
  so.mmap_load = o.snapshot_mmap;
  so.prefault = o.snapshot_prefault;
  return so;
}
}  // namespace

QueryEngine::QueryEngine(ApClassifier& clf, Options opts)
    : clf_(clf), opts_(std::move(opts)), pool_(default_threads(opts_.num_threads)) {
  require(opts_.batch_grain > 0, "QueryEngine: zero batch grain");
  if (opts_.build_threads > 0) clf_.set_build_threads(opts_.build_threads);
  // Warm restore: a valid durable snapshot serves immediately, skipping the
  // freeze + eager-precompute cost.  Anything wrong with the file (absent,
  // torn, corrupt) falls back to a normal build — never a crash.
  std::shared_ptr<const FlatSnapshot> restored;
  if (!opts_.snapshot_path.empty()) {
    try {
      restored = load_snapshot(opts_.snapshot_path, snapshot_options(opts_));
      snapshot_restores_.add();
    } catch (const Error&) {
    }
  }
  if (restored)
    snap_.store(std::move(restored), /*epoch=*/0, opts_.epoch_pin);
  else
    snap_.store(FlatSnapshot::build(clf_, snapshot_options(opts_), &pool_),
                /*epoch=*/0, opts_.epoch_pin);
  // Discard any delta accumulated before the engine existed: the delta
  // consumed at the next republish must describe changes since THIS
  // snapshot, not since some earlier classifier state.
  clf_.take_atom_delta();
  publish_count_.fetch_add(1, std::memory_order_relaxed);
  last_publish_ns_.store(steady_now_ns(), std::memory_order_relaxed);
  persist_current_locked();  // ctor: no readers yet, no lock needed
}

// ---- batch admission (Options::max_pending_batches) ----

bool QueryEngine::admit_batch() const {
  if (opts_.max_pending_batches == 0) return true;
  if (pending_batches_.fetch_add(1, std::memory_order_acq_rel) >=
      opts_.max_pending_batches) {
    pending_batches_.fetch_sub(1, std::memory_order_acq_rel);
    batches_rejected_.add();
    return false;
  }
  return true;
}

void QueryEngine::release_batch() const {
  if (opts_.max_pending_batches > 0)
    pending_batches_.fetch_sub(1, std::memory_order_acq_rel);
}

struct QueryEngine::BatchTicket {
  const QueryEngine& e;
  const bool admitted;
  explicit BatchTicket(const QueryEngine& eng) : e(eng), admitted(eng.admit_batch()) {}
  ~BatchTicket() {
    if (admitted) e.release_batch();
  }
  explicit operator bool() const { return admitted; }
};

std::vector<AtomId> QueryEngine::classify_batch(
    const std::vector<PacketHeader>& hs) const {
  auto out = try_classify_batch(hs);
  require(out.has_value(), ErrorCode::kUnavailable,
          "QueryEngine: batch admission cap reached; retry or shed load");
  return std::move(*out);
}

std::vector<Behavior> QueryEngine::query_batch(const std::vector<PacketHeader>& hs,
                                               BoxId ingress) const {
  auto out = try_query_batch(hs, ingress);
  require(out.has_value(), ErrorCode::kUnavailable,
          "QueryEngine: batch admission cap reached; retry or shed load");
  return std::move(*out);
}

std::optional<std::vector<AtomId>> QueryEngine::try_classify_batch(
    const std::vector<PacketHeader>& hs) const {
  const std::shared_ptr<const FlatSnapshot> s = snapshot();
  return try_classify_batch_on(*s, hs.data(), hs.size());
}

std::optional<std::vector<Behavior>> QueryEngine::try_query_batch(
    const std::vector<PacketHeader>& hs, BoxId ingress) const {
  const std::shared_ptr<const FlatSnapshot> s = snapshot();
  return try_query_batch_on(*s, hs.data(), hs.size(), ingress);
}

std::optional<std::vector<AtomId>> QueryEngine::try_classify_batch_on(
    const FlatSnapshot& s, const PacketHeader* hs, std::size_t n) const {
  // The admission permit is an RAII ticket: it is released when `ticket`
  // leaves scope on EVERY path out of this function — normal return, the
  // middlebox require() below, or a worker-task exception rethrown by the
  // pool's Group::wait().  A leaked permit would permanently shrink the
  // admission window (pending_batches_ never drains back to zero), so the
  // fault-injection suite pins this down (AdmissionPermitRecovery).
  BatchTicket ticket(*this);
  if (!ticket) return std::nullopt;
  obs::ScopedTimer timer(classify_batch_hist_);
  batch_size_hist_.record(n);
  std::vector<AtomId> out(n);
  pool_.parallel_for(n, opts_.batch_grain,
                     [&](std::size_t first, std::size_t last) {
                       s.classify_into(hs + first, last - first,
                                       out.data() + first);
                     });
  queries_answered_.add(n);
  return out;
}

std::optional<std::vector<Behavior>> QueryEngine::try_query_batch_on(
    const FlatSnapshot& s, const PacketHeader* hs, std::size_t n,
    BoxId ingress) const {
  BatchTicket ticket(*this);
  if (!ticket) return std::nullopt;
  obs::ScopedTimer timer(query_batch_hist_);
  batch_size_hist_.record(n);
  std::vector<Behavior> out(n);
  require(!s.has_middleboxes(),
          "QueryEngine::query_batch: middlebox networks need live tree "
          "re-search; use ApClassifier::query/query_probabilistic");
  pool_.parallel_for(n, opts_.batch_grain,
                     [&](std::size_t first, std::size_t last) {
                       // Batched stage 1 (cache probe + lockstep walk), then
                       // the table-read stage 2 per header.
                       std::array<AtomId, 64> atoms;
                       std::size_t i = first;
                       while (i < last) {
                         const std::size_t m = std::min<std::size_t>(last - i, atoms.size());
                         s.classify_into(hs + i, m, atoms.data());
                         for (std::size_t k = 0; k < m; ++k)
                           out[i + k] = s.behavior_of(atoms[k], ingress);
                         i += m;
                       }
                     });
  queries_answered_.add(n);
  return out;
}

void QueryEngine::drain_visits_locked() {
  // Readers may still bump the old snapshot's counters until they drop it;
  // those late bumps are lost with the snapshot — acceptable for a rebuild
  // heuristic, and the alternative (blocking readers) defeats the design.
  const std::shared_ptr<const FlatSnapshot> old = snap_.load();
  if (old && old->tracks_visits()) clf_.merge_visit_counts(old->visit_counts());
}

void QueryEngine::republish_locked() {
  // Consume the classifier's accumulated atom delta (always — even when the
  // policy rejects the delta path, the next delta must start from THIS
  // publish, not an earlier one).
  const AtomDelta delta = clf_.take_atom_delta();
  const std::shared_ptr<const FlatSnapshot> prev = snap_.load();
  bool use_delta = false;
  if (prev && delta.valid && opts_.snapshot_delta != SnapshotDeltaPolicy::kNever) {
    if (opts_.snapshot_delta == SnapshotDeltaPolicy::kAlways) {
      use_delta = true;
    } else {
      const double changed = static_cast<double>(
          delta.killed.size() + delta.added.size() + delta.dirty.size());
      const double live =
          static_cast<double>(std::max<std::size_t>(clf_.atoms().alive_count(), 1));
      use_delta = changed <= opts_.delta_max_dirty_fraction * live;
    }
  }
  // Epoch tag for this publish: a pending writer override (the cluster's
  // coordinated bump) or the previous epoch + 1.  Consumed exactly once.
  const std::uint64_t epoch =
      next_epoch_ ? *next_epoch_ : snap_.epoch() + 1;
  next_epoch_.reset();
  if (use_delta) {
    snap_.store(FlatSnapshot::build_delta(clf_, snapshot_options(opts_), &pool_,
                                          *prev, delta),
                epoch, opts_.epoch_pin);
    snapshot_delta_publishes_.add();
  } else {
    snap_.store(FlatSnapshot::build(clf_, snapshot_options(opts_), &pool_),
                epoch, opts_.epoch_pin);
  }
  publish_count_.fetch_add(1, std::memory_order_relaxed);
  last_publish_ns_.store(steady_now_ns(), std::memory_order_relaxed);
  persist_current_locked();
}

void QueryEngine::persist_current_locked() {
  if (opts_.snapshot_path.empty()) return;
  // Durability here is best-effort by design: the snapshot is a cache of
  // the classifier (the WAL is the source of truth), so a failed save must
  // degrade — count it and keep serving — not take the engine down.
  try {
    save_snapshot(*snap_.load(), opts_.snapshot_path);
    snapshot_saves_.add();
  } catch (const Error&) {
    snapshot_save_failures_.add();
  }
}

double QueryEngine::snapshot_age_seconds() const {
  const std::int64_t last = last_publish_ns_.load(std::memory_order_relaxed);
  return static_cast<double>(steady_now_ns() - last) * 1e-9;
}

void QueryEngine::register_metrics(obs::MetricsRegistry& reg,
                                   const std::string& prefix) const {
  reg.register_histogram(prefix + ".classify_batch_seconds", &classify_batch_hist_);
  reg.register_histogram(prefix + ".query_batch_seconds", &query_batch_hist_);
  reg.register_histogram(prefix + ".batch_size", &batch_size_hist_, "count", 1.0);
  reg.register_counter(prefix + ".queries_answered", &queries_answered_);
  reg.register_fn(prefix + ".publish_count",
                  [this] { return static_cast<double>(publish_count()); }, "count");
  reg.register_fn(prefix + ".snapshot_epoch",
                  [this] { return static_cast<double>(snapshot_epoch()); },
                  "count");
  reg.register_fn(prefix + ".snapshot_age_seconds",
                  [this] { return snapshot_age_seconds(); }, "seconds");
  reg.register_fn(prefix + ".worker_threads",
                  [this] { return static_cast<double>(pool_.thread_count()); },
                  "count");
  // Current-snapshot query-path rows.  Callbacks acquire the snapshot slot
  // (not the writer lock), so stats() taking them under writer_mu_ is safe.
  reg.register_fn(prefix + ".snapshot.header_cache_hits",
                  [this] { return static_cast<double>(snapshot()->header_cache_hits()); },
                  "count");
  reg.register_fn(prefix + ".snapshot.header_cache_misses",
                  [this] { return static_cast<double>(snapshot()->header_cache_misses()); },
                  "count");
  reg.register_fn(prefix + ".snapshot.header_cache_hit_rate", [this] {
    const auto s = snapshot();
    const double total =
        static_cast<double>(s->header_cache_hits() + s->header_cache_misses());
    return total > 0.0 ? static_cast<double>(s->header_cache_hits()) / total : 0.0;
  });
  reg.register_fn(prefix + ".snapshot.behavior_table_fills",
                  [this] { return static_cast<double>(snapshot()->behavior_table_fills()); },
                  "count");
  reg.register_fn(prefix + ".snapshot.behavior_table_mode", [this] {
    // 0 = disabled, 1 = lazy, 2 = precomputed.
    return static_cast<double>(
        static_cast<int>(snapshot()->behavior_table_mode()));
  });
  reg.register_fn(prefix + ".snapshot.behavior_table_build_seconds",
                  [this] { return snapshot()->behavior_table_build_seconds(); },
                  "seconds");
  reg.register_fn(prefix + ".snapshot.memory_bytes",
                  [this] { return static_cast<double>(snapshot()->memory_bytes()); },
                  "bytes");
  // Owned vs mapped split: mapped bytes are shared page cache (a warm-
  // restored arena), not private heap — capacity planning needs them apart.
  reg.register_fn(prefix + ".snapshot.owned_bytes",
                  [this] { return static_cast<double>(snapshot()->owned_bytes()); },
                  "bytes");
  reg.register_fn(prefix + ".snapshot.mapped_bytes",
                  [this] { return static_cast<double>(snapshot()->mapped_bytes()); },
                  "bytes");
  reg.register_fn(prefix + ".peak_rss_bytes",
                  [] { return static_cast<double>(util::peak_rss_bytes()); },
                  "bytes");
  // Compiled match program rows (0s when the program is off / over budget).
  reg.register_fn(
      prefix + ".snapshot.program_instructions",
      [this] { return static_cast<double>(snapshot()->program_instructions()); },
      "count");
  reg.register_fn(prefix + ".snapshot.program_bytes",
                  [this] { return static_cast<double>(snapshot()->program_bytes()); },
                  "bytes");
  reg.register_fn(prefix + ".snapshot.program_compile_us", [this] {
    return snapshot()->program_compile_seconds() * 1e6;
  }, "us");
  reg.register_fn(prefix + ".snapshot.kernel_dispatch", [this] {
    // 0 = no program (interpreted walk), 1 = scalar kernel, 2 = AVX2 kernel.
    return static_cast<double>(snapshot()->kernel_dispatch());
  });
  reg.register_counter(prefix + ".snapshot_delta_publishes",
                       &snapshot_delta_publishes_);
  reg.register_fn(
      prefix + ".snapshot.behavior_rows_carried",
      [this] { return static_cast<double>(snapshot()->behavior_rows_carried()); },
      "count");
  reg.register_fn(
      prefix + ".snapshot.header_entries_carried",
      [this] { return static_cast<double>(snapshot()->header_entries_carried()); },
      "count");
  reg.register_counter(prefix + ".snapshot_restores", &snapshot_restores_);
  reg.register_counter(prefix + ".snapshot_saves", &snapshot_saves_);
  reg.register_counter(prefix + ".snapshot_save_failures", &snapshot_save_failures_);
  reg.register_counter(prefix + ".batches_rejected", &batches_rejected_);
  reg.register_fn(prefix + ".pending_batches",
                  [this] { return static_cast<double>(pending_batches()); }, "count");
  pool_.register_metrics(reg, prefix + ".pool.");
  clf_.register_metrics(reg, prefix + ".classifier");
}

obs::MetricsSnapshot QueryEngine::stats() const {
  // Taken under the writer lock: the classifier rows are callbacks into
  // non-atomic state that updates/rebuilds mutate.
  std::lock_guard<std::mutex> lock(writer_mu_);
  obs::MetricsRegistry reg;
  register_metrics(reg);
  return reg.snapshot();
}

AddPredicateResult QueryEngine::add_predicate(bdd::Bdd p, PredicateKind kind,
                                              std::optional<PortId> origin) {
  return update([&](ApClassifier& c) {
    return c.add_predicate(std::move(p), kind, origin);
  });
}

void QueryEngine::remove_predicate(PredId id) {
  update([&](ApClassifier& c) { c.remove_predicate(id); });
}

ApClassifier::RuleUpdateResult QueryEngine::insert_fib_rule(
    BoxId box, const ForwardingRule& r) {
  return update([&](ApClassifier& c) { return c.insert_fib_rule(box, r); });
}

ApClassifier::RuleUpdateResult QueryEngine::remove_fib_rule(
    BoxId box, const ForwardingRule& r) {
  return update([&](ApClassifier& c) { return c.remove_fib_rule(box, r); });
}

ApClassifier::RuleUpdateResult QueryEngine::set_input_acl(BoxId box,
                                                          std::uint32_t port,
                                                          Acl acl) {
  return update(
      [&](ApClassifier& c) { return c.set_input_acl(box, port, std::move(acl)); });
}

void QueryEngine::rebuild(std::optional<BuildMethod> method,
                          bool distribution_aware) {
  update([&](ApClassifier& c) { c.rebuild(method, distribution_aware); });
}

}  // namespace apc::engine
