#include "engine/engine.hpp"

#include <algorithm>

namespace apc::engine {

namespace {
std::size_t default_threads(std::size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 1 ? std::min<std::size_t>(hw - 1, 8) : 0;
}
}  // namespace

QueryEngine::QueryEngine(ApClassifier& clf, Options opts)
    : clf_(clf), opts_(opts), pool_(default_threads(opts.num_threads)) {
  require(opts_.batch_grain > 0, "QueryEngine: zero batch grain");
  if (opts_.build_threads > 0) clf_.set_build_threads(opts_.build_threads);
  snap_.store(FlatSnapshot::build(clf_));
  publish_count_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<AtomId> QueryEngine::classify_batch(
    const std::vector<PacketHeader>& hs) const {
  std::vector<AtomId> out(hs.size());
  const std::shared_ptr<const FlatSnapshot> s = snapshot();
  pool_.parallel_for(hs.size(), opts_.batch_grain,
                     [&](std::size_t first, std::size_t last) {
                       for (std::size_t i = first; i < last; ++i)
                         out[i] = s->classify(hs[i]);
                     });
  return out;
}

std::vector<Behavior> QueryEngine::query_batch(const std::vector<PacketHeader>& hs,
                                               BoxId ingress) const {
  std::vector<Behavior> out(hs.size());
  const std::shared_ptr<const FlatSnapshot> s = snapshot();
  pool_.parallel_for(hs.size(), opts_.batch_grain,
                     [&](std::size_t first, std::size_t last) {
                       for (std::size_t i = first; i < last; ++i)
                         out[i] = s->query(hs[i], ingress);
                     });
  return out;
}

void QueryEngine::drain_visits_locked() {
  // Readers may still bump the old snapshot's counters until they drop it;
  // those late bumps are lost with the snapshot — acceptable for a rebuild
  // heuristic, and the alternative (blocking readers) defeats the design.
  const std::shared_ptr<const FlatSnapshot> old = snap_.load();
  if (old && old->tracks_visits()) clf_.merge_visit_counts(old->visit_counts());
}

void QueryEngine::republish_locked() {
  snap_.store(FlatSnapshot::build(clf_));
  publish_count_.fetch_add(1, std::memory_order_relaxed);
}

AddPredicateResult QueryEngine::add_predicate(bdd::Bdd p, PredicateKind kind,
                                              std::optional<PortId> origin) {
  return update([&](ApClassifier& c) {
    return c.add_predicate(std::move(p), kind, origin);
  });
}

void QueryEngine::remove_predicate(PredId id) {
  update([&](ApClassifier& c) { c.remove_predicate(id); });
}

ApClassifier::RuleUpdateResult QueryEngine::insert_fib_rule(
    BoxId box, const ForwardingRule& r) {
  return update([&](ApClassifier& c) { return c.insert_fib_rule(box, r); });
}

ApClassifier::RuleUpdateResult QueryEngine::remove_fib_rule(
    BoxId box, const ForwardingRule& r) {
  return update([&](ApClassifier& c) { return c.remove_fib_rule(box, r); });
}

ApClassifier::RuleUpdateResult QueryEngine::set_input_acl(BoxId box,
                                                          std::uint32_t port,
                                                          Acl acl) {
  return update(
      [&](ApClassifier& c) { return c.set_input_acl(box, port, std::move(acl)); });
}

void QueryEngine::rebuild(std::optional<BuildMethod> method,
                          bool distribution_aware) {
  update([&](ApClassifier& c) { c.rebuild(method, distribution_aware); });
}

}  // namespace apc::engine
