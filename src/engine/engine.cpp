#include "engine/engine.hpp"

#include <algorithm>
#include <chrono>

namespace apc::engine {

namespace {
/// Worker-thread resolution for batch fan-out.  The calling thread always
/// participates, so `hardware_concurrency - 1` workers means total batch
/// parallelism equals hardware_concurrency — the repo-wide meaning of
/// "threads = 0".  Explicit requests are honored as given, uncapped.
std::size_t default_threads(std::size_t requested) {
  if (requested > 0) return requested;
  return util::TaskPool::resolve_threads(0) - 1;
}

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

QueryEngine::QueryEngine(ApClassifier& clf, Options opts)
    : clf_(clf), opts_(opts), pool_(default_threads(opts.num_threads)) {
  require(opts_.batch_grain > 0, "QueryEngine: zero batch grain");
  if (opts_.build_threads > 0) clf_.set_build_threads(opts_.build_threads);
  snap_.store(FlatSnapshot::build(clf_));
  publish_count_.fetch_add(1, std::memory_order_relaxed);
  last_publish_ns_.store(steady_now_ns(), std::memory_order_relaxed);
}

std::vector<AtomId> QueryEngine::classify_batch(
    const std::vector<PacketHeader>& hs) const {
  obs::ScopedTimer timer(classify_batch_hist_);
  batch_size_hist_.record(hs.size());
  std::vector<AtomId> out(hs.size());
  const std::shared_ptr<const FlatSnapshot> s = snapshot();
  pool_.parallel_for(hs.size(), opts_.batch_grain,
                     [&](std::size_t first, std::size_t last) {
                       for (std::size_t i = first; i < last; ++i)
                         out[i] = s->classify(hs[i]);
                     });
  queries_answered_.add(hs.size());
  return out;
}

std::vector<Behavior> QueryEngine::query_batch(const std::vector<PacketHeader>& hs,
                                               BoxId ingress) const {
  obs::ScopedTimer timer(query_batch_hist_);
  batch_size_hist_.record(hs.size());
  std::vector<Behavior> out(hs.size());
  const std::shared_ptr<const FlatSnapshot> s = snapshot();
  pool_.parallel_for(hs.size(), opts_.batch_grain,
                     [&](std::size_t first, std::size_t last) {
                       for (std::size_t i = first; i < last; ++i)
                         out[i] = s->query(hs[i], ingress);
                     });
  queries_answered_.add(hs.size());
  return out;
}

void QueryEngine::drain_visits_locked() {
  // Readers may still bump the old snapshot's counters until they drop it;
  // those late bumps are lost with the snapshot — acceptable for a rebuild
  // heuristic, and the alternative (blocking readers) defeats the design.
  const std::shared_ptr<const FlatSnapshot> old = snap_.load();
  if (old && old->tracks_visits()) clf_.merge_visit_counts(old->visit_counts());
}

void QueryEngine::republish_locked() {
  snap_.store(FlatSnapshot::build(clf_));
  publish_count_.fetch_add(1, std::memory_order_relaxed);
  last_publish_ns_.store(steady_now_ns(), std::memory_order_relaxed);
}

double QueryEngine::snapshot_age_seconds() const {
  const std::int64_t last = last_publish_ns_.load(std::memory_order_relaxed);
  return static_cast<double>(steady_now_ns() - last) * 1e-9;
}

void QueryEngine::register_metrics(obs::MetricsRegistry& reg,
                                   const std::string& prefix) const {
  reg.register_histogram(prefix + ".classify_batch_seconds", &classify_batch_hist_);
  reg.register_histogram(prefix + ".query_batch_seconds", &query_batch_hist_);
  reg.register_histogram(prefix + ".batch_size", &batch_size_hist_, "count", 1.0);
  reg.register_counter(prefix + ".queries_answered", &queries_answered_);
  reg.register_fn(prefix + ".publish_count",
                  [this] { return static_cast<double>(publish_count()); }, "count");
  reg.register_fn(prefix + ".snapshot_age_seconds",
                  [this] { return snapshot_age_seconds(); }, "seconds");
  reg.register_fn(prefix + ".worker_threads",
                  [this] { return static_cast<double>(pool_.thread_count()); },
                  "count");
  pool_.register_metrics(reg, prefix + ".pool.");
  clf_.register_metrics(reg, prefix + ".classifier");
}

obs::MetricsSnapshot QueryEngine::stats() const {
  // Taken under the writer lock: the classifier rows are callbacks into
  // non-atomic state that updates/rebuilds mutate.
  std::lock_guard<std::mutex> lock(writer_mu_);
  obs::MetricsRegistry reg;
  register_metrics(reg);
  return reg.snapshot();
}

AddPredicateResult QueryEngine::add_predicate(bdd::Bdd p, PredicateKind kind,
                                              std::optional<PortId> origin) {
  return update([&](ApClassifier& c) {
    return c.add_predicate(std::move(p), kind, origin);
  });
}

void QueryEngine::remove_predicate(PredId id) {
  update([&](ApClassifier& c) { c.remove_predicate(id); });
}

ApClassifier::RuleUpdateResult QueryEngine::insert_fib_rule(
    BoxId box, const ForwardingRule& r) {
  return update([&](ApClassifier& c) { return c.insert_fib_rule(box, r); });
}

ApClassifier::RuleUpdateResult QueryEngine::remove_fib_rule(
    BoxId box, const ForwardingRule& r) {
  return update([&](ApClassifier& c) { return c.remove_fib_rule(box, r); });
}

ApClassifier::RuleUpdateResult QueryEngine::set_input_acl(BoxId box,
                                                          std::uint32_t port,
                                                          Acl acl) {
  return update(
      [&](ApClassifier& c) { return c.set_input_acl(box, port, std::move(acl)); });
}

void QueryEngine::rebuild(std::optional<BuildMethod> method,
                          bool distribution_aware) {
  update([&](ApClassifier& c) { c.rebuild(method, distribution_aware); });
}

}  // namespace apc::engine
