#include "engine/snapshot.hpp"

#include <algorithm>
#include <cstring>
#include <unordered_map>

#include "util/stopwatch.hpp"

namespace apc::engine {

namespace {

/// Heap footprint of one published Behavior (for memory accounting).
std::size_t behavior_heap_bytes(const Behavior& b) {
  return sizeof(Behavior) + b.edges.capacity() * sizeof(BehaviorEdge) +
         b.deliveries.capacity() * sizeof(PortId) +
         b.drops.capacity() * sizeof(Drop);
}

/// Rough per-cell estimate used to decide eager vs lazy table fill before
/// any behavior has been computed (a handful of hops and drops per class).
constexpr std::size_t kBehaviorBytesEstimate =
    sizeof(Behavior) + 8 * sizeof(BehaviorEdge) + 4 * sizeof(Drop);

}  // namespace

BitsRef FlatSnapshot::CoreData::intern_bits(const FlatBitset& b) {
  BitsRef r;
  r.word_off = words.size();
  r.nbits = b.size();
  words.insert(words.end(), b.words().begin(), b.words().end());
  return r;
}

FlatSnapshot::CoreData FlatSnapshot::freeze_core(const ApClassifier& clf) {
  CoreData core;
  const ApTree& tree = clf.tree();
  const PredicateRegistry& reg = clf.registry();
  require(!tree.empty(), "FlatSnapshot: empty tree");

  // Flatten the BDD of every distinct predicate the tree evaluates into one
  // shared node array (structural sharing across predicates is preserved:
  // flatten() deduplicates by manager node).  Only REACHABLE nodes count:
  // incremental deletes leave unreachable garbage behind, and garbage may
  // be labeled with since-deleted predicates.
  std::vector<PredId> pred_ids;
  std::unordered_map<PredId, std::uint32_t> pred_slot;
  {
    std::vector<std::int32_t> dfs{tree.root()};
    while (!dfs.empty()) {
      const ApTree::Node& n = tree.node(dfs.back());
      dfs.pop_back();
      if (n.is_leaf()) continue;
      const PredId p = static_cast<PredId>(n.pred);
      if (pred_slot.emplace(p, static_cast<std::uint32_t>(pred_ids.size())).second)
        pred_ids.push_back(p);
      dfs.push_back(n.right);
      dfs.push_back(n.left);
    }
  }
  std::vector<bdd::Bdd> roots;
  roots.reserve(pred_ids.size());
  for (const PredId p : pred_ids) roots.push_back(reg.bdd_of(p));
  std::vector<bdd::FlatBddNode> flat_nodes;
  const std::vector<std::uint32_t> dense_roots = bdd::flatten(roots, flat_nodes);

  // Freeze the tree in DFS preorder: a node's true-branch child is the next
  // array element (only the false-branch index is materialized), so a walk
  // streams forward through a hot prefix instead of chasing source-tree
  // indices.  The predicate sequence along any root-to-leaf path — and hence
  // the evaluation count — is unchanged.
  {
    struct WorkItem {
      std::int32_t src;  ///< source-tree node to emit next
      std::int32_t fix;  ///< emitted node whose `right` points here, or -1
    };
    std::vector<WorkItem> work;
    work.push_back({tree.root(), -1});
    core.tree.reserve(tree.node_count());
    while (!work.empty()) {
      const WorkItem w = work.back();
      work.pop_back();
      const std::int32_t dst = static_cast<std::int32_t>(core.tree.size());
      if (w.fix >= 0) core.tree[w.fix].right = dst;
      const ApTree::Node& n = tree.node(w.src);
      FlatTreeNode f;
      if (n.is_leaf()) {
        f.bdd_root = n.atom;
        f.right = kLeaf;
        core.tree.push_back(f);
      } else {
        f.bdd_root = dense_roots[pred_slot.at(static_cast<PredId>(n.pred))];
        f.right = 0;  // patched when the false branch is emitted
        core.tree.push_back(f);
        // Pop order: left (true branch) is emitted immediately after dst so
        // the implicit left-child-is-next invariant holds; the right child
        // is emitted after the whole left subtree and patches tree[dst].
        work.push_back({n.right, dst});
        work.push_back({n.left, -1});
      }
    }
    core.tree_root = 0;
  }

  // Reorder the BDD nodes DFS-contiguous in tree order (hi edge first): the
  // nodes a walk dereferences early land early in the array, so the hot
  // paths of all predicates share a compact prefix of cache lines.
  {
    constexpr std::uint32_t kUnmapped = 0xFFFFFFFFu;
    std::vector<std::uint32_t> remap(flat_nodes.size(), kUnmapped);
    remap[bdd::kFalse] = bdd::kFalse;
    remap[bdd::kTrue] = bdd::kTrue;
    core.bdd_nodes.reserve(flat_nodes.size());
    core.bdd_nodes.push_back(flat_nodes[bdd::kFalse]);
    core.bdd_nodes.push_back(flat_nodes[bdd::kTrue]);
    std::vector<std::uint32_t> stack;
    for (const FlatTreeNode& t : core.tree) {
      if (t.right == kLeaf) continue;
      stack.push_back(t.bdd_root);
      while (!stack.empty()) {
        const std::uint32_t r = stack.back();
        stack.pop_back();
        if (r <= bdd::kTrue || remap[r] != kUnmapped) continue;
        remap[r] = static_cast<std::uint32_t>(core.bdd_nodes.size());
        core.bdd_nodes.push_back(flat_nodes[r]);
        stack.push_back(flat_nodes[r].lo);  // popped second
        stack.push_back(flat_nodes[r].hi);  // popped first: hi path is hot
      }
    }
    for (std::size_t i = 2; i < core.bdd_nodes.size(); ++i) {
      core.bdd_nodes[i].lo = remap[core.bdd_nodes[i].lo];
      core.bdd_nodes[i].hi = remap[core.bdd_nodes[i].hi];
    }
    for (FlatTreeNode& t : core.tree)
      if (t.right != kLeaf) t.bdd_root = remap[t.bdd_root];
  }

  // Freeze stage 2 flattened: per-box contiguous runs of port entries and
  // input-ACL slots, with every R(p) bitset interned into the shared word
  // pool.  Deleted predicates keep an empty BitsRef — test() is then false
  // for every atom, exactly pred_contains()'s answer.
  const CompiledNetwork& cn = clf.compiled();
  const Topology& topo = clf.network().topology;
  core.boxes.resize(topo.box_count());
  for (BoxId b = 0; b < topo.box_count(); ++b) {
    ArenaBox& fb = core.boxes[b];
    fb.port_begin = static_cast<std::uint32_t>(core.ports.size());
    for (const auto& entry : cn.port_preds[b]) {
      ArenaPortEntry e;
      e.port = entry.port;
      const Port& p = topo.box(b).ports[entry.port];
      if (p.kind == Port::Kind::Link) {
        e.peer_box = static_cast<std::int32_t>(p.peer->box);
        e.peer_port = p.peer->port;
      }
      if (!reg.is_deleted(entry.pred))
        e.fwd_atoms = core.intern_bits(reg.atoms_of(entry.pred));
      if (entry.out_acl != kNoPred) {
        e.has_out_acl = 1;
        if (!reg.is_deleted(entry.out_acl))
          e.out_acl_atoms = core.intern_bits(reg.atoms_of(entry.out_acl));
      }
      core.ports.push_back(e);
    }
    fb.port_count = static_cast<std::uint32_t>(core.ports.size()) - fb.port_begin;
    fb.acl_begin = static_cast<std::uint32_t>(core.in_acls.size());
    for (std::size_t port = 0; port < cn.in_acl_by_port[b].size(); ++port) {
      ArenaInAcl a;
      const PredId acl = cn.in_acl_by_port[b][port];
      if (acl != kNoPred) {
        a.present = 1;
        if (!reg.is_deleted(acl)) a.atoms = core.intern_bits(reg.atoms_of(acl));
      }
      core.in_acls.push_back(a);
    }
    fb.acl_count = static_cast<std::uint32_t>(core.in_acls.size()) - fb.acl_begin;
  }

  core.atom_capacity = clf.atoms().capacity();
  core.has_middleboxes = clf.has_middleboxes();
  core.tracks_visits = clf.options().track_visits;
  return core;
}

std::shared_ptr<FlatSnapshot> FlatSnapshot::from_core(CoreData&& core,
                                                      const Options& opts,
                                                      const MatchProgram* carried) {
  // The match program must be compiled (or carried) BEFORE arena assembly so
  // its instructions land inside the single allocation — that is what lets
  // save_snapshot write one contiguous image and a mapped load skip the
  // recompile entirely.
  std::shared_ptr<const MatchProgram> compiled;
  const MatchInsn* prog_code = nullptr;
  std::size_t prog_count = 0;
  std::uint32_t prog_entry = 0;
  double compile_seconds = 0.0;
  bool have_program = false;
  if (carried != nullptr) {
    prog_code = carried->instructions();
    prog_count = carried->instruction_count();
    prog_entry = carried->entry();
    have_program = true;
  } else if (opts.compile_program != ProgramMode::kNever) {
    const std::size_t max_bytes = opts.compile_program == ProgramMode::kAuto
                                      ? MatchProgram::kAutoProgramBytes
                                      : 0;
    compiled = MatchProgram::compile(core.bdd_nodes.data(), core.bdd_nodes.size(),
                                     core.tree.data(), core.tree.size(),
                                     core.tree_root, max_bytes);
    if (compiled) {  // nullptr (over budget) keeps the interpreted walk
      prog_code = compiled->instructions();
      prog_count = compiled->instruction_count();
      prog_entry = compiled->entry();
      compile_seconds = compiled->compile_seconds();
      have_program = true;
    }
  }

  ArenaBuilder b;
  const ArenaRef bdd_ref = b.reserve<bdd::FlatBddNode>(core.bdd_nodes.size());
  const ArenaRef tree_ref = b.reserve<FlatTreeNode>(core.tree.size());
  const ArenaRef boxes_ref = b.reserve<ArenaBox>(core.boxes.size());
  const ArenaRef ports_ref = b.reserve<ArenaPortEntry>(core.ports.size());
  const ArenaRef acls_ref = b.reserve<ArenaInAcl>(core.in_acls.size());
  const ArenaRef words_ref = b.reserve<std::uint64_t>(core.words.size());
  const ArenaRef prog_ref = b.reserve<MatchInsn>(prog_count);
  b.allocate();

  const auto copy = [&](auto& ref, const auto* src, std::size_t elem) {
    if (ref.count != 0)
      std::memcpy(b.section<std::byte>(ref), src, ref.count * elem);
  };
  copy(bdd_ref, core.bdd_nodes.data(), sizeof(bdd::FlatBddNode));
  copy(tree_ref, core.tree.data(), sizeof(FlatTreeNode));
  copy(boxes_ref, core.boxes.data(), sizeof(ArenaBox));
  copy(ports_ref, core.ports.data(), sizeof(ArenaPortEntry));
  copy(acls_ref, core.in_acls.data(), sizeof(ArenaInAcl));
  copy(words_ref, core.words.data(), sizeof(std::uint64_t));
  copy(prog_ref, prog_code, sizeof(MatchInsn));

  ArenaHeader& h = b.header();
  h.flags = (core.has_middleboxes ? ArenaHeader::kHasMiddleboxes : 0u) |
            (core.tracks_visits ? ArenaHeader::kTracksVisits : 0u) |
            (have_program ? ArenaHeader::kHasProgram : 0u);
  h.atom_capacity = core.atom_capacity;
  h.tree_root = core.tree_root;
  h.program_entry = prog_entry;
  // The union of header bits any frozen BDD node tests — the header-cache
  // canonicalization mask, persisted so a mapped load never re-derives it.
  for (std::size_t i = 2; i < core.bdd_nodes.size(); ++i) {
    const std::uint32_t v = core.bdd_nodes[i].var;
    h.tested_bits[v >> 6] |= std::uint64_t{1} << (v & 63);
  }
  h.bdd_nodes = bdd_ref;
  h.tree = tree_ref;
  h.boxes = boxes_ref;
  h.ports = ports_ref;
  h.in_acls = acls_ref;
  h.words = words_ref;
  h.program = prog_ref;

  auto snap = std::shared_ptr<FlatSnapshot>(new FlatSnapshot());
  snap->adopt_arena(b.finish(), opts, compile_seconds, carried != nullptr);
  return snap;
}

std::shared_ptr<FlatSnapshot> FlatSnapshot::from_arena(
    std::shared_ptr<const Arena> arena, const Options& opts) {
  auto snap = std::shared_ptr<FlatSnapshot>(new FlatSnapshot());
  snap->adopt_arena(std::move(arena), opts, 0.0, false);
  // A loaded arena without a program section (built under kNever, or over
  // the auto budget) still honors the caller's options: compile now, off
  // the arena's frozen arrays (load-path parity with v1).
  if (!snap->program_ && opts.compile_program != ProgramMode::kNever) {
    const std::size_t max_bytes = opts.compile_program == ProgramMode::kAuto
                                      ? MatchProgram::kAutoProgramBytes
                                      : 0;
    snap->program_ =
        MatchProgram::compile(snap->bdd_nodes_, snap->bdd_count_, snap->tree_,
                              snap->tree_count_, snap->tree_root_, max_bytes);
  }
  return snap;
}

void FlatSnapshot::adopt_arena(std::shared_ptr<const Arena> arena,
                               const Options& opts, double compile_seconds,
                               bool carried) {
  arena_ = std::move(arena);
  const ArenaHeader& h = arena_->header();
  bdd_nodes_ = arena_->ptr<bdd::FlatBddNode>(h.bdd_nodes);
  bdd_count_ = static_cast<std::size_t>(h.bdd_nodes.count);
  tree_ = arena_->ptr<FlatTreeNode>(h.tree);
  tree_count_ = static_cast<std::size_t>(h.tree.count);
  tree_root_ = h.tree_root;
  boxes_ = arena_->ptr<ArenaBox>(h.boxes);
  box_count_ = static_cast<std::size_t>(h.boxes.count);
  ports_ = arena_->ptr<ArenaPortEntry>(h.ports);
  in_acls_ = arena_->ptr<ArenaInAcl>(h.in_acls);
  words_ = arena_->ptr<std::uint64_t>(h.words);
  atom_capacity_ = static_cast<std::size_t>(h.atom_capacity);
  has_middleboxes_ = (h.flags & ArenaHeader::kHasMiddleboxes) != 0;
  if ((h.flags & ArenaHeader::kTracksVisits) != 0) visits_.reset(atom_capacity_);

  if ((h.flags & ArenaHeader::kHasProgram) != 0 &&
      opts.compile_program != ProgramMode::kNever) {
    // Zero-copy adoption: the program runs straight out of the arena (and
    // keeps it alive — a mapped file stays mapped while any reader runs).
    program_ = MatchProgram::adopt(arena_->ptr<MatchInsn>(h.program),
                                   static_cast<std::size_t>(h.program.count),
                                   h.program_entry, arena_, compile_seconds);
    program_carried_ = carried;
  }

  init_accelerators(opts);
}

void FlatSnapshot::maybe_precompute(const ApClassifier& clf, const Options& opts,
                                    util::TaskPool* pool) {
  // Upgrade the lazy table to a full eager precompute when the estimate
  // (cells + one behavior per live cell) also fits the budget.  Middlebox
  // networks always stay lazy: query() refuses them, so an eager fill would
  // precompute cells nobody is expected to read.
  if (table_mode_ != BehaviorTableMode::kLazy || has_middleboxes_) return;
  const std::vector<AtomId> alive = clf.atoms().alive_ids();
  const std::size_t boxes = box_count_;
  const std::size_t estimate =
      table_cells_ * sizeof(std::atomic<const Behavior*>) +
      alive.size() * boxes * kBehaviorBytesEstimate;
  if (estimate > opts.behavior_table_budget) return;
  Stopwatch sw;
  const std::size_t total = alive.size() * boxes;
  const auto fill = [&](std::size_t first, std::size_t last) {
    for (std::size_t k = first; k < last; ++k) {
      const AtomId atom = alive[k / boxes];
      const BoxId box = static_cast<BoxId>(k % boxes);
      std::atomic<const Behavior*>& cell = table_[atom * boxes + box];
      // Cells seeded by a delta carry-over are already correct — walking
      // them again would only build a copy fill_cell throws away.
      if (cell.load(std::memory_order_relaxed) == nullptr)
        fill_cell(cell, atom, box);
    }
  };
  if (pool != nullptr)
    pool->parallel_for(total, 64, fill);
  else
    fill(0, total);
  table_build_seconds_ = sw.seconds();
  table_mode_ = BehaviorTableMode::kPrecomputed;
}

std::shared_ptr<const FlatSnapshot> FlatSnapshot::build(const ApClassifier& clf,
                                                        const Options& opts,
                                                        util::TaskPool* pool) {
  auto snap = from_core(freeze_core(clf), opts, nullptr);
  snap->maybe_precompute(clf, opts, pool);
  return snap;
}

bool FlatSnapshot::same_stage2_shape(const FlatSnapshot& prev) const {
  if (box_count_ != prev.box_count_) return false;
  for (std::size_t b = 0; b < box_count_; ++b) {
    const ArenaBox& nb = boxes_[b];
    const ArenaBox& pb = prev.boxes_[b];
    if (nb.port_count != pb.port_count) return false;
    if (nb.acl_count != pb.acl_count) return false;
    for (std::uint32_t i = 0; i < nb.port_count; ++i) {
      const ArenaPortEntry& ne = ports_[nb.port_begin + i];
      const ArenaPortEntry& pe = prev.ports_[pb.port_begin + i];
      if (ne.port != pe.port || ne.peer_box != pe.peer_box ||
          ne.peer_port != pe.peer_port || ne.has_out_acl != pe.has_out_acl)
        return false;
    }
    for (std::uint32_t i = 0; i < nb.acl_count; ++i)
      if (in_acls_[nb.acl_begin + i].present !=
          prev.in_acls_[pb.acl_begin + i].present)
        return false;
  }
  return true;
}

std::shared_ptr<const FlatSnapshot> FlatSnapshot::build_delta(
    const ApClassifier& clf, const Options& opts, util::TaskPool* pool,
    const FlatSnapshot& prev, const AtomDelta& delta) {
  CoreData core = freeze_core(clf);

  // Compiled program carry: the program is a pure function of the frozen
  // (tree, bdd_nodes) arrays, so when both are bytewise identical the
  // retiring snapshot's program is copied into the new arena instead of
  // recompiled (the copy — a memcpy of the instruction bytes — keeps the
  // new arena self-contained, so saving it still persists the program and
  // the retiring snapshot's storage can be unmapped).
  const MatchProgram* carried = nullptr;
  if (prev.program_ && core.tree.size() == prev.tree_count_ &&
      core.bdd_nodes.size() == prev.bdd_count_ &&
      std::memcmp(core.tree.data(), prev.tree_,
                  core.tree.size() * sizeof(FlatTreeNode)) == 0 &&
      std::memcmp(core.bdd_nodes.data(), prev.bdd_nodes_,
                  core.bdd_nodes.size() * sizeof(bdd::FlatBddNode)) == 0) {
    carried = prev.program_.get();
  }
  auto snap = from_core(std::move(core), opts, carried);

  if (delta.valid) {
    // Atoms whose behavior rows may have changed: killed atoms are gone,
    // added atoms are new ids (>= prev capacity by construction), dirty
    // atoms kept their id but changed predicate membership.  Everything
    // else behaves identically, so its rows and cache entries carry over.
    std::vector<char> row_dirty(prev.atom_capacity_, 0);
    std::vector<char> killed(prev.atom_capacity_, 0);
    const auto mark = [&](const std::vector<AtomId>& ids, std::vector<char>& set) {
      for (const AtomId a : ids)
        if (a < set.size()) set[a] = 1;
    };
    mark(delta.killed, row_dirty);
    mark(delta.added, row_dirty);
    mark(delta.dirty, row_dirty);
    mark(delta.killed, killed);

    // Behavior-table rows: deep-copy every published cell of a clean atom.
    // Copies (not shared pointers) because the previous snapshot frees its
    // cells on teardown.  Gated on identical stage-2 shape — a structural
    // change (new port entry, ACL added/removed) invalidates rows the atom
    // delta cannot see.
    if (snap->table_mode_ != BehaviorTableMode::kDisabled &&
        prev.table_mode_ != BehaviorTableMode::kDisabled &&
        snap->has_middleboxes_ == prev.has_middleboxes_ &&
        snap->same_stage2_shape(prev)) {
      const std::size_t boxes = snap->box_count_;
      for (const AtomId a : clf.atoms().alive_ids()) {
        if (a >= prev.atom_capacity_ || row_dirty[a]) continue;
        for (std::size_t b = 0; b < boxes; ++b) {
          const Behavior* src =
              prev.table_[a * boxes + b].load(std::memory_order_acquire);
          if (src == nullptr) continue;
          const Behavior* copy = new Behavior(*src);
          snap->table_[a * boxes + b].store(copy, std::memory_order_relaxed);
          snap->table_heap_bytes_.fetch_add(behavior_heap_bytes(*copy),
                                            std::memory_order_relaxed);
          ++snap->rows_carried_;
        }
      }
    }

    // Header-cache entries: a surviving atom's BDD is unchanged, so every
    // (header -> atom) mapping whose atom was not killed is still correct.
    // The old canonical key can be re-masked for the new cache only when
    // the new tested-bits mask is a subset of the old one (true after
    // deletes; adds usually widen the mask and start cold).
    if (snap->cache_ && prev.cache_) {
      const HeaderAtomCache::Mask& nm = snap->cache_->mask();
      const HeaderAtomCache::Mask& om = prev.cache_->mask();
      bool subset = true;
      for (std::size_t i = 0; i < nm.size(); ++i)
        subset = subset && (nm[i] & ~om[i]) == 0;
      if (subset) {
        prev.cache_->for_each_valid(
            [&](const HeaderAtomCache::KeyWords& key, AtomId atom) {
              if (atom >= snap->atom_capacity_) return;
              if (atom < killed.size() && killed[atom]) return;
              HeaderAtomCache::KeyWords remasked;
              for (std::size_t i = 0; i < remasked.size(); ++i)
                remasked[i] = key[i] & nm[i];
              snap->cache_->insert_canonical(remasked, atom);
              ++snap->cache_entries_carried_;
            });
      }
    }
  }

  snap->maybe_precompute(clf, opts, pool);
  return snap;
}

void FlatSnapshot::init_accelerators(const Options& opts) {
  // Header -> atom cache (layer 2), keyed on the bits any predicate tests.
  // The mask was computed at assembly time and travels in the arena header,
  // so a mapped load does not touch the BDD section to rebuild it.
  if (opts.header_cache_capacity > 0) {
    HeaderAtomCache::Mask mask{};
    const ArenaHeader& h = arena_->header();
    std::copy(std::begin(h.tested_bits), std::end(h.tested_bits), mask.begin());
    cache_ = std::make_unique<HeaderAtomCache>(opts.header_cache_capacity,
                                               opts.header_cache_shards, mask);
  }

  // Behavior table (layer 1): the cell-pointer array must fit the budget or
  // the table is off; cells start empty (kLazy).
  const std::size_t cells = atom_capacity_ * box_count_;
  const std::size_t cell_bytes = cells * sizeof(std::atomic<const Behavior*>);
  if (opts.behavior_table_budget > 0 && cells > 0 &&
      cell_bytes <= opts.behavior_table_budget) {
    table_cells_ = cells;
    table_ = std::make_unique<std::atomic<const Behavior*>[]>(cells);
    for (std::size_t i = 0; i < cells; ++i)
      table_[i].store(nullptr, std::memory_order_relaxed);
    table_heap_bytes_.store(cell_bytes, std::memory_order_relaxed);
    table_mode_ = BehaviorTableMode::kLazy;
  }
}

FlatSnapshot::~FlatSnapshot() {
  for (std::size_t i = 0; i < table_cells_; ++i)
    delete table_[i].load(std::memory_order_relaxed);
}

AtomId FlatSnapshot::classify(const PacketHeader& h) const {
  if (cache_) {
    AtomId atom;
    if (cache_->lookup(h, atom)) {
      cache_hits_.add(1);
      visits_.bump(atom);  // no-op (size 0) unless tracking is on
      return atom;
    }
    if (program_) {
      atom = program_->run(h);
      visits_.bump(atom);
    } else {
      atom = classify_walk(h);  // bumps visits at the leaf
    }
    cache_->insert(h, atom);
    cache_misses_.add(1);
    return atom;
  }
  if (program_) {
    const AtomId atom = program_->run(h);
    visits_.bump(atom);
    return atom;
  }
  return classify_walk(h);
}

AtomId FlatSnapshot::classify_walk(const PacketHeader& h) const {
  std::size_t evals;
  return classify_counted(h, evals);
}

AtomId FlatSnapshot::classify_counted(const PacketHeader& h,
                                      std::size_t& evals) const {
  const bdd::FlatBddNode* nodes = bdd_nodes_;
  const FlatTreeNode* tree = tree_;
  std::size_t count = 0;
  std::int32_t idx = tree_root_;
  while (tree[idx].right != kLeaf) {
    ++count;
    std::uint32_t r = tree[idx].bdd_root;
    while (r > bdd::kTrue) {
      const bdd::FlatBddNode& b = nodes[r];
      r = h.bit(b.var) ? b.hi : b.lo;
    }
    idx = r == bdd::kTrue ? idx + 1 : tree[idx].right;
  }
  evals = count;
  const AtomId a = static_cast<AtomId>(tree[idx].bdd_root);
  visits_.bump(a);  // no-op (size 0) unless tracking is on
  return a;
}

void FlatSnapshot::classify_lockstep(const PacketHeader* hs,
                                     const std::size_t* which, std::size_t n,
                                     AtomId* out) const {
  const bdd::FlatBddNode* nodes = bdd_nodes_;
  const FlatTreeNode* tree = tree_;

  // Single-leaf tree: every header lands on the same atom, no walk needed.
  // One batched counter add instead of n contended per-packet bumps.
  if (tree[tree_root_].right == kLeaf) {
    const AtomId a = static_cast<AtomId>(tree[tree_root_].bdd_root);
    for (std::size_t i = 0; i < n; ++i) out[which ? which[i] : i] = a;
    visits_.add(a, n);
    return;
  }

  // One in-flight walk per lane.  Each lane advances one dependent load per
  // round (a BDD node or a tree node) and prefetches the next, so the DRAM
  // latencies of up to kLanes cold walks overlap instead of serializing.
  constexpr std::size_t kLanes = 8;
  struct Lane {
    const PacketHeader* h;
    std::size_t slot;  ///< output index
    std::int32_t idx;  ///< current tree node
    std::uint32_t r;   ///< BDD cursor resolving tree[idx]'s predicate
  };
  Lane lanes[kLanes];
  std::size_t active = 0;
  std::size_t next = 0;

  const auto admit = [&](Lane& L) -> bool {
    if (next >= n) return false;
    const std::size_t slot = which ? which[next] : next;
    ++next;
    L.h = &hs[slot];
    L.slot = slot;
    L.idx = tree_root_;
    L.r = tree[tree_root_].bdd_root;
    __builtin_prefetch(&nodes[L.r]);
    return true;
  };

  while (active < kLanes && admit(lanes[active])) ++active;

  while (active > 0) {
    for (std::size_t i = 0; i < active;) {
      Lane& L = lanes[i];
      if (L.r > bdd::kTrue) {  // one BDD step
        const bdd::FlatBddNode& b = nodes[L.r];
        L.r = L.h->bit(b.var) ? b.hi : b.lo;
        __builtin_prefetch(&nodes[L.r]);
        ++i;
        continue;
      }
      // Predicate resolved: take the tree branch.
      L.idx = L.r == bdd::kTrue ? L.idx + 1 : tree[L.idx].right;
      const FlatTreeNode& t = tree[L.idx];
      if (t.right == kLeaf) {
        const AtomId a = static_cast<AtomId>(t.bdd_root);
        visits_.bump(a);
        out[L.slot] = a;
        if (!admit(L)) L = lanes[--active];  // refill lane or compact
        continue;  // re-examine slot i with its new contents
      }
      L.r = t.bdd_root;
      __builtin_prefetch(&nodes[L.r]);
      ++i;
    }
  }
}

// Batch classification of the slots in `which` (or all of [0, n)): the
// compiled match program's kernel when present, the interpreted lockstep
// walk otherwise.  The kernels don't touch the visit counters, so the bumps
// happen here, from the written outputs.
void FlatSnapshot::classify_batch(const PacketHeader* hs,
                                  const std::size_t* which, std::size_t n,
                                  AtomId* out) const {
  if (!program_) {
    classify_lockstep(hs, which, n, out);
    return;
  }
  program_->run_batch(hs, which, n, out);
  if (visits_.size() > 0) {
    for (std::size_t i = 0; i < n; ++i) visits_.bump(out[which ? which[i] : i]);
  }
}

void FlatSnapshot::classify_into(const PacketHeader* hs, std::size_t n,
                                 AtomId* out) const {
  if (n == 0) return;
  if (!cache_) {
    classify_batch(hs, nullptr, n, out);
    return;
  }
  // Probe pass, then one kernel/lockstep pass over the misses.  Hit/miss
  // counts are folded into the shared counters once per batch, not per
  // packet.
  std::vector<std::size_t> misses;
  std::size_t hits = 0;
  for (std::size_t i = 0; i < n; ++i) {
    AtomId atom;
    if (cache_->lookup(hs[i], atom)) {
      out[i] = atom;
      visits_.bump(atom);
      ++hits;
    } else {
      misses.push_back(i);
    }
  }
  if (!misses.empty()) {
    classify_batch(hs, misses.data(), misses.size(), out);
    for (const std::size_t i : misses) cache_->insert(hs[i], out[i]);
    cache_misses_.add(misses.size());
  }
  if (hits > 0) cache_hits_.add(hits);
}

const Behavior* FlatSnapshot::fill_cell(std::atomic<const Behavior*>& cell,
                                        AtomId atom, BoxId ingress) const {
  const Behavior* fresh = new Behavior(behavior_walk(atom, ingress));
  const Behavior* expected = nullptr;
  // First writer wins; the loser's copy is discarded.  acq_rel on success
  // publishes the Behavior's contents to every later acquire load.
  if (cell.compare_exchange_strong(expected, fresh, std::memory_order_acq_rel,
                                   std::memory_order_acquire)) {
    table_fills_.add(1);
    table_heap_bytes_.fetch_add(behavior_heap_bytes(*fresh),
                                std::memory_order_relaxed);
    return fresh;
  }
  delete fresh;
  return expected;
}

Behavior FlatSnapshot::behavior_of(AtomId atom, BoxId ingress) const {
  require(ingress < box_count_, "FlatSnapshot::behavior_of: bad ingress");
  if (table_mode_ != BehaviorTableMode::kDisabled && atom < atom_capacity_) {
    std::atomic<const Behavior*>& cell = table_[atom * box_count_ + ingress];
    const Behavior* b = cell.load(std::memory_order_acquire);
    if (b == nullptr) b = fill_cell(cell, atom, ingress);
    return *b;
  }
  return behavior_walk(atom, ingress);
}

// Mirrors compute_behavior_into (classifier/behavior.cpp) step for step so
// behaviors are byte-identical: same stack discipline, same push order, same
// visited-loop semantics, same drop reasons.
Behavior FlatSnapshot::behavior_walk(AtomId atom, BoxId ingress) const {
  require(ingress < box_count_, "FlatSnapshot::behavior_walk: bad ingress");
  Behavior out;

  struct Visit {
    BoxId box;
    std::uint32_t in_port;
  };
  static constexpr std::uint32_t kNoInPort = 0xFFFFFFFFu;
  std::vector<Visit> stack;
  stack.push_back({ingress, kNoInPort});

  std::uint64_t visited_mask = 0;
  std::vector<bool> visited_vec;
  if (box_count_ > 64) visited_vec.assign(box_count_, false);
  const auto test_and_set_visited = [&](BoxId b) {
    if (visited_vec.empty()) {
      const std::uint64_t bit = std::uint64_t{1} << b;
      const bool was = visited_mask & bit;
      visited_mask |= bit;
      return was;
    }
    const bool was = visited_vec[b];
    visited_vec[b] = true;
    return was;
  };

  while (!stack.empty()) {
    const Visit v = stack.back();
    stack.pop_back();

    if (test_and_set_visited(v.box)) {
      out.loop_detected = true;
      continue;
    }
    const ArenaBox& fb = boxes_[v.box];

    if (v.in_port != kNoInPort && v.in_port < fb.acl_count) {
      const ArenaInAcl& acl = in_acls_[fb.acl_begin + v.in_port];
      if (acl.present != 0 && !bits_test(acl.atoms, atom)) {
        out.drops.push_back({v.box, Drop::Reason::InputAcl});
        continue;
      }
    }

    bool forwarded = false;
    bool acl_blocked = false;
    for (std::uint32_t k = 0; k < fb.port_count; ++k) {
      const ArenaPortEntry& e = ports_[fb.port_begin + k];
      if (!bits_test(e.fwd_atoms, atom)) continue;
      if (e.has_out_acl != 0 && !bits_test(e.out_acl_atoms, atom)) {
        acl_blocked = true;
        continue;
      }
      forwarded = true;
      if (e.peer_box < 0) {
        out.edges.push_back({v.box, e.port, std::nullopt});
        out.deliveries.push_back({v.box, e.port});
      } else {
        out.edges.push_back({v.box, e.port, static_cast<BoxId>(e.peer_box)});
        stack.push_back({static_cast<BoxId>(e.peer_box), e.peer_port});
      }
    }
    if (!forwarded) {
      out.drops.push_back({v.box, acl_blocked ? Drop::Reason::OutputAcl
                                              : Drop::Reason::NoMatchingRule});
    }
  }
  return out;
}

Behavior FlatSnapshot::query(const PacketHeader& h, BoxId ingress) const {
  require(!has_middleboxes_,
          "FlatSnapshot::query: middlebox networks need live tree re-search; "
          "use ApClassifier::query/query_probabilistic");
  return behavior_of(classify(h), ingress);
}

std::size_t FlatSnapshot::owned_bytes() const {
  std::size_t bytes = arena_ && !arena_->mapped() ? arena_->size() : 0;
  bytes += visits_.size() * sizeof(std::atomic<std::uint64_t>);
  // Table cell array + every published Behavior's heap (tracked by
  // fill_cell), plus the header cache's slot arrays.
  bytes += table_heap_bytes_.load(std::memory_order_relaxed);
  if (cache_) bytes += cache_->memory_bytes();
  // A load-time-compiled program lives on its own heap; an adopted program
  // runs out of the arena and is already counted there.
  if (program_ && program_->owns_code()) bytes += program_->bytes();
  return bytes;
}

std::size_t FlatSnapshot::mapped_bytes() const {
  return arena_ && arena_->mapped() ? arena_->size() : 0;
}

}  // namespace apc::engine
