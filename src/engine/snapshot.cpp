#include "engine/snapshot.hpp"

#include <unordered_map>

namespace apc::engine {

std::shared_ptr<const FlatSnapshot> FlatSnapshot::build(const ApClassifier& clf) {
  auto snap = std::shared_ptr<FlatSnapshot>(new FlatSnapshot());
  const ApTree& tree = clf.tree();
  const PredicateRegistry& reg = clf.registry();
  require(!tree.empty(), "FlatSnapshot: empty tree");

  // Flatten the BDD of every distinct predicate the tree evaluates into one
  // shared node array (structural sharing across predicates is preserved:
  // flatten() deduplicates by manager node).
  std::vector<PredId> pred_ids;
  std::unordered_map<PredId, std::uint32_t> pred_slot;
  for (std::size_t i = 0; i < tree.node_count(); ++i) {
    const ApTree::Node& n = tree.node(static_cast<std::int32_t>(i));
    if (n.is_leaf()) continue;
    const PredId p = static_cast<PredId>(n.pred);
    if (pred_slot.emplace(p, static_cast<std::uint32_t>(pred_ids.size())).second)
      pred_ids.push_back(p);
  }
  std::vector<bdd::Bdd> roots;
  roots.reserve(pred_ids.size());
  for (const PredId p : pred_ids) roots.push_back(reg.bdd_of(p));
  const std::vector<std::uint32_t> dense_roots =
      bdd::flatten(roots, snap->bdd_nodes_);

  // Freeze the tree over the flat array (same node indices as the source
  // tree, so classify takes the same path and evaluates the same count).
  snap->tree_.resize(tree.node_count());
  for (std::size_t i = 0; i < tree.node_count(); ++i) {
    const ApTree::Node& n = tree.node(static_cast<std::int32_t>(i));
    FlatTreeNode& f = snap->tree_[i];
    if (n.is_leaf()) {
      f.atom = n.atom;
    } else {
      f.bdd_root = dense_roots[pred_slot.at(static_cast<PredId>(n.pred))];
      f.left = n.left;
      f.right = n.right;
    }
  }
  snap->tree_root_ = tree.root();

  // Freeze stage 2: per-box port entries with copies of the R(p) bitsets.
  // Deleted predicates keep an empty bitset — test() is then false for
  // every atom, exactly pred_contains()'s answer.
  const CompiledNetwork& cn = clf.compiled();
  const Topology& topo = clf.network().topology;
  snap->boxes_.resize(topo.box_count());
  for (BoxId b = 0; b < topo.box_count(); ++b) {
    FlatBox& fb = snap->boxes_[b];
    for (const auto& entry : cn.port_preds[b]) {
      FlatPortEntry e;
      e.port = entry.port;
      const Port& p = topo.box(b).ports[entry.port];
      if (p.kind == Port::Kind::Link) {
        e.peer_box = static_cast<std::int32_t>(p.peer->box);
        e.peer_port = p.peer->port;
      }
      if (!reg.is_deleted(entry.pred)) e.fwd_atoms = reg.atoms_of(entry.pred);
      if (entry.out_acl != kNoPred) {
        e.has_out_acl = true;
        if (!reg.is_deleted(entry.out_acl))
          e.out_acl_atoms = reg.atoms_of(entry.out_acl);
      }
      fb.ports.push_back(std::move(e));
    }
    fb.in_acls.resize(cn.in_acl_by_port[b].size());
    for (std::size_t port = 0; port < cn.in_acl_by_port[b].size(); ++port) {
      const PredId acl = cn.in_acl_by_port[b][port];
      if (acl == kNoPred) continue;
      fb.in_acls[port].present = true;
      if (!reg.is_deleted(acl)) fb.in_acls[port].atoms = reg.atoms_of(acl);
    }
  }

  snap->atom_capacity_ = clf.atoms().capacity();
  snap->has_middleboxes_ = clf.has_middleboxes();
  if (clf.options().track_visits) snap->visits_.reset(snap->atom_capacity_);
  return snap;
}

AtomId FlatSnapshot::classify(const PacketHeader& h) const {
  std::size_t evals;
  return classify_counted(h, evals);
}

AtomId FlatSnapshot::classify_counted(const PacketHeader& h,
                                      std::size_t& evals) const {
  const bdd::FlatBddNode* nodes = bdd_nodes_.data();
  const FlatTreeNode* tree = tree_.data();
  std::size_t count = 0;
  std::int32_t idx = tree_root_;
  while (true) {
    const FlatTreeNode& n = tree[idx];
    if (n.left < 0) {
      evals = count;
      const AtomId a = static_cast<AtomId>(n.atom);
      visits_.bump(a);  // no-op (size 0) unless tracking is on
      return a;
    }
    ++count;
    std::uint32_t r = n.bdd_root;
    while (r > bdd::kTrue) {
      const bdd::FlatBddNode& b = nodes[r];
      r = h.bit(b.var) ? b.hi : b.lo;
    }
    idx = r == bdd::kTrue ? n.left : n.right;
  }
}

// Mirrors compute_behavior_into (classifier/behavior.cpp) step for step so
// behaviors are byte-identical: same stack discipline, same push order, same
// visited-loop semantics, same drop reasons.
Behavior FlatSnapshot::behavior_of(AtomId atom, BoxId ingress) const {
  require(ingress < boxes_.size(), "FlatSnapshot::behavior_of: bad ingress");
  Behavior out;

  struct Visit {
    BoxId box;
    std::uint32_t in_port;
  };
  static constexpr std::uint32_t kNoInPort = 0xFFFFFFFFu;
  std::vector<Visit> stack;
  stack.push_back({ingress, kNoInPort});

  std::uint64_t visited_mask = 0;
  std::vector<bool> visited_vec;
  if (boxes_.size() > 64) visited_vec.assign(boxes_.size(), false);
  const auto test_and_set_visited = [&](BoxId b) {
    if (visited_vec.empty()) {
      const std::uint64_t bit = std::uint64_t{1} << b;
      const bool was = visited_mask & bit;
      visited_mask |= bit;
      return was;
    }
    const bool was = visited_vec[b];
    visited_vec[b] = true;
    return was;
  };

  while (!stack.empty()) {
    const Visit v = stack.back();
    stack.pop_back();

    if (test_and_set_visited(v.box)) {
      out.loop_detected = true;
      continue;
    }
    const FlatBox& fb = boxes_[v.box];

    if (v.in_port != kNoInPort && v.in_port < fb.in_acls.size()) {
      const FlatInAcl& acl = fb.in_acls[v.in_port];
      if (acl.present && !acl.atoms.test(atom)) {
        out.drops.push_back({v.box, Drop::Reason::InputAcl});
        continue;
      }
    }

    bool forwarded = false;
    bool acl_blocked = false;
    for (const FlatPortEntry& e : fb.ports) {
      if (!e.fwd_atoms.test(atom)) continue;
      if (e.has_out_acl && !e.out_acl_atoms.test(atom)) {
        acl_blocked = true;
        continue;
      }
      forwarded = true;
      if (e.peer_box < 0) {
        out.edges.push_back({v.box, e.port, std::nullopt});
        out.deliveries.push_back({v.box, e.port});
      } else {
        out.edges.push_back({v.box, e.port, static_cast<BoxId>(e.peer_box)});
        stack.push_back({static_cast<BoxId>(e.peer_box), e.peer_port});
      }
    }
    if (!forwarded) {
      out.drops.push_back({v.box, acl_blocked ? Drop::Reason::OutputAcl
                                              : Drop::Reason::NoMatchingRule});
    }
  }
  return out;
}

Behavior FlatSnapshot::query(const PacketHeader& h, BoxId ingress) const {
  require(!has_middleboxes_,
          "FlatSnapshot::query: middlebox networks need live tree re-search; "
          "use ApClassifier::query/query_probabilistic");
  return behavior_of(classify(h), ingress);
}

std::size_t FlatSnapshot::memory_bytes() const {
  std::size_t bytes = bdd_nodes_.capacity() * sizeof(bdd::FlatBddNode) +
                      tree_.capacity() * sizeof(FlatTreeNode);
  for (const FlatBox& fb : boxes_) {
    bytes += fb.ports.capacity() * sizeof(FlatPortEntry) +
             fb.in_acls.capacity() * sizeof(FlatInAcl);
    for (const FlatPortEntry& e : fb.ports)
      bytes += (e.fwd_atoms.size() + e.out_acl_atoms.size()) / 8;
    for (const FlatInAcl& a : fb.in_acls) bytes += a.atoms.size() / 8;
  }
  return bytes + visits_.size() * sizeof(std::uint64_t);
}

}  // namespace apc::engine
