#include "engine/header_cache.hpp"

namespace apc::engine {

namespace {

/// Rounds `v` up to a power of two, saturating at `hi` (itself a power of
/// two).  The unclamped version spun forever for v > 2^63 (the shift
/// overflows to 0, so `p < v` never terminates) — any request at or above
/// the cap deterministically gets the cap instead.
std::size_t round_up_pow2_clamped(std::size_t v, std::size_t hi) {
  if (v >= hi) return hi;
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

HeaderAtomCache::HeaderAtomCache(std::size_t capacity, std::size_t shards,
                                 const Mask& tested_bits)
    : mask_(tested_bits) {
  // Deterministic sizing (see the constructor comment in the header):
  //   slots  = clamp(pow2_round_up(capacity), kMinSlots, kMaxSlots)
  //   shards = clamp(pow2_round_up(requested or auto), 1, slots / kMinSlots)
  // Both results are powers of two and slots_per_shard >= kMinSlots always
  // holds, so the low/high hash-bit split in slot_for() stays exact.
  const std::size_t slots = round_up_pow2_clamped(
      capacity < kMinSlots ? kMinSlots : capacity, kMaxSlots);
  if (shards == 0) {
    shards = slots / 256 ? slots / 256 : 1;  // auto: one shard per 256 slots
    if (shards > 64) shards = 64;
  }
  // An explicit request is honored after power-of-two rounding, up to the
  // invariant ceiling of slots / kMinSlots — never silently above it, and
  // never a spin/overflow for absurd requests.
  shards = round_up_pow2_clamped(shards, slots / kMinSlots);
  shard_count_ = shards;
  slots_per_shard_ = slots / shards;
  shards_.reserve(shard_count_);
  for (std::size_t i = 0; i < shard_count_; ++i)
    shards_.push_back(std::make_unique<Slot[]>(slots_per_shard_));
}

std::uint64_t HeaderAtomCache::hash_words(const KeyWords& key) {
  // splitmix64-style per-word mix: fast, and the masked canonical form means
  // headers differing only in untested bits share one slot (more hits).
  std::uint64_t x = 0x9e3779b97f4a7c15ull;
  for (std::uint32_t i = 0; i < PacketHeader::kWords; ++i) {
    x ^= key[i] + 0x9e3779b97f4a7c15ull + (x << 6) + (x >> 2);
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
  }
  return x;
}

std::uint64_t HeaderAtomCache::hash_canonical(
    const PacketHeader& h,
    std::array<std::uint64_t, PacketHeader::kWords>& key) const {
  const auto& words = h.words();
  for (std::uint32_t i = 0; i < PacketHeader::kWords; ++i)
    key[i] = words[i] & mask_[i];
  return hash_words(key);
}

HeaderAtomCache::Slot& HeaderAtomCache::slot_for(std::uint64_t hash) const {
  const std::size_t shard = (hash >> 48) & (shard_count_ - 1);
  const std::size_t slot = hash & (slots_per_shard_ - 1);
  return shards_[shard][slot];
}

bool HeaderAtomCache::lookup(const PacketHeader& h, AtomId& atom) const {
  std::array<std::uint64_t, PacketHeader::kWords> key;
  Slot& s = slot_for(hash_canonical(h, key));

  const std::uint32_t seq1 = s.seq.load(std::memory_order_acquire);
  if (seq1 == 0 || (seq1 & 1u)) return false;  // empty or mid-write
  bool match = true;
  for (std::uint32_t i = 0; i < PacketHeader::kWords; ++i)
    match &= s.key[i].load(std::memory_order_relaxed) == key[i];
  const std::uint32_t a = s.atom.load(std::memory_order_relaxed);
  // Seqlock revalidation: the fence orders the relaxed data loads before the
  // second seq read, so any concurrent writer is detected and the (possibly
  // torn) observation is discarded as a miss.
  std::atomic_thread_fence(std::memory_order_acquire);
  if (!match || s.seq.load(std::memory_order_relaxed) != seq1) return false;
  atom = static_cast<AtomId>(a);
  return true;
}

void HeaderAtomCache::publish(const KeyWords& key, std::uint64_t hash,
                              AtomId atom) const {
  Slot& s = slot_for(hash);

  std::uint32_t seq = s.seq.load(std::memory_order_relaxed);
  if (seq & 1u) return;  // another writer owns the slot; cache is lossy
  if (!s.seq.compare_exchange_strong(seq, seq + 1, std::memory_order_acq_rel,
                                     std::memory_order_relaxed))
    return;
  for (std::uint32_t i = 0; i < PacketHeader::kWords; ++i)
    s.key[i].store(key[i], std::memory_order_relaxed);
  s.atom.store(static_cast<std::uint32_t>(atom), std::memory_order_relaxed);
  s.seq.store(seq + 2, std::memory_order_release);
}

void HeaderAtomCache::insert(const PacketHeader& h, AtomId atom) const {
  std::array<std::uint64_t, PacketHeader::kWords> key;
  const std::uint64_t hash = hash_canonical(h, key);
  publish(key, hash, atom);
}

void HeaderAtomCache::insert_canonical(const KeyWords& key, AtomId atom) const {
  publish(key, hash_words(key), atom);
}

void HeaderAtomCache::for_each_valid(
    const std::function<void(const KeyWords&, AtomId)>& fn) const {
  for (std::size_t shard = 0; shard < shard_count_; ++shard) {
    for (std::size_t i = 0; i < slots_per_shard_; ++i) {
      const Slot& s = shards_[shard][i];
      const std::uint32_t seq1 = s.seq.load(std::memory_order_acquire);
      if (seq1 == 0 || (seq1 & 1u)) continue;  // empty or mid-write
      KeyWords key;
      for (std::uint32_t w = 0; w < PacketHeader::kWords; ++w)
        key[w] = s.key[w].load(std::memory_order_relaxed);
      const std::uint32_t a = s.atom.load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (s.seq.load(std::memory_order_relaxed) != seq1) continue;  // torn
      fn(key, static_cast<AtomId>(a));
    }
  }
}

std::size_t HeaderAtomCache::memory_bytes() const {
  return shard_count_ * slots_per_shard_ * sizeof(Slot) +
         shards_.capacity() * sizeof(shards_[0]);
}

}  // namespace apc::engine
