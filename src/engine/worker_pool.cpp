#include "engine/worker_pool.hpp"

#include <atomic>

#include "util/error.hpp"

namespace apc::engine {

WorkerPool::WorkerPool(std::size_t threads) {
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void WorkerPool::run_chunks(Job& job) {
  while (true) {
    const std::size_t c = job.next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (c >= job.chunk_count) return;
    const std::size_t first = c * job.grain;
    const std::size_t last = std::min(first + job.grain, job.total);
    (*job.fn)(first, last);
    if (job.done_chunks.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        job.chunk_count) {
      // Last chunk: wake the caller.  Take the lock so the notify cannot
      // slip between the caller's predicate check and its wait.
      std::lock_guard<std::mutex> lock(mu_);
      done_cv_.notify_all();
    }
  }
}

void WorkerPool::worker_loop() {
  std::uint64_t seen = 0;
  while (true) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || job_seq_ != seen; });
      if (stop_) return;
      seen = job_seq_;
      job = job_;
    }
    if (job) run_chunks(*job);
  }
}

void WorkerPool::parallel_for(
    std::size_t total, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (total == 0) return;
  require(grain > 0, "WorkerPool::parallel_for: zero grain");
  if (workers_.empty() || total <= grain) {
    fn(0, total);
    return;
  }

  std::lock_guard<std::mutex> job_lock(job_mu_);
  auto job = std::make_shared<Job>();
  job->total = total;
  job->grain = grain;
  job->chunk_count = (total + grain - 1) / grain;
  job->fn = &fn;
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = job;
    ++job_seq_;
  }
  work_cv_.notify_all();

  // The caller is a claimant too — no idle waiting while chunks remain.
  run_chunks(*job);

  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] {
    return job->done_chunks.load(std::memory_order_acquire) == job->chunk_count;
  });
  {
    // Drop the pool's reference so the Job (and the caller's fn) cannot be
    // touched after parallel_for returns.
    if (job_ == job) job_ = nullptr;
  }
}

}  // namespace apc::engine
