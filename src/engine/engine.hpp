// QueryEngine — snapshot-based concurrent batch query engine.
//
// The paper's headline claim is stage-1 throughput (Figs. 12/14).  This
// engine serves that workload from FlatSnapshots: immutable, manager-free
// freezes of the AP Tree (see snapshot.hpp) published RCU-style.
//
//   readers                 writer (one at a time)
//   -------                 ----------------------
//   s = snapshot()          lock writer mutex
//   s->classify(h) ...      mutate ApClassifier (add/remove predicate,
//   (never blocks,           rule updates, rebuild) — BDD work happens here
//    never sees a           build a fresh FlatSnapshot off to the side
//    half-updated tree)     atomically swap the shared_ptr  (release)
//
// Readers acquire the current snapshot pointer and keep the shared_ptr
// alive for the duration of their batch, so a snapshot retires only after
// its last reader drops it.  Updates therefore never block in-flight
// queries and queries never observe intermediate tree states.
//
// The publication slot is a mutex-guarded shared_ptr rather than
// std::atomic<std::shared_ptr>: libstdc++'s lock-bit implementation
// releases its load() lock with a relaxed RMW, which leaves no provable
// happens-before edge to the next store()'s pointer swap (TSan flags it).
// The guarded slot's critical section is a single refcount bump — queries
// themselves never hold the lock.
//
// classify_batch()/query_batch() fan a vector of headers across a small
// worker pool; every item in one batch is answered from one snapshot, so a
// batch is atomic with respect to updates.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>

#include "classifier/classifier.hpp"
#include "engine/snapshot.hpp"
#include "util/task_pool.hpp"

namespace apc::engine {

/// How republication builds the next snapshot from the classifier's
/// accumulated atom delta (ApClassifier::take_atom_delta).
enum class SnapshotDeltaPolicy : std::uint8_t {
  /// Delta build when the dirty fraction is small enough
  /// (Options::delta_max_dirty_fraction), full build otherwise.
  kAuto,
  /// Delta build whenever a valid delta and a previous snapshot exist.
  kAlways,
  /// Always build cold (the pre-delta behavior).
  kNever,
};

class QueryEngine {
 public:
  struct Options {
    /// Worker threads for batch fan-out (the calling thread always
    /// participates too).  0 = hardware_concurrency - 1 workers, so total
    /// batch parallelism matches hardware_concurrency — the same "0 means
    /// all cores" convention as every other threads knob in the repo.
    std::size_t num_threads = 0;
    /// Headers per work chunk when fanning out a batch.
    std::size_t batch_grain = 256;
    /// Construction threads used by every mutation that goes through
    /// update() — atom recomputation and tree rebuilds fan out on this many
    /// threads (see docs/architecture.md, "Parallel construction
    /// pipeline").  0 = keep the classifier's own setting (whose default is
    /// hardware_concurrency).
    std::size_t build_threads = 0;
    /// Memory budget for each snapshot's (atom x ingress) behavior table:
    /// below it the table is precomputed at publish time, above it cells
    /// fill lazily, 0 turns the table off (behavior_of() walks the
    /// topology).  See FlatSnapshot::Options and docs/architecture.md,
    /// "Query path".
    std::size_t behavior_table_budget = 64u << 20;
    /// Per-snapshot header -> atom cache capacity in slots (~64 bytes per
    /// slot; rounded up to a power of two).  0 disables the cache.
    std::size_t header_cache_capacity = 1u << 15;
    /// Header-cache shard count (power of two); 0 = auto-size from
    /// capacity.
    std::size_t header_cache_shards = 0;
    /// Whether each published snapshot compiles its frozen tree+BDDs into a
    /// flat branchless match program (engine/program.hpp) that cache misses
    /// execute instead of the interpreted walk.  kAuto compiles when the
    /// program fits MatchProgram::kAutoProgramBytes; kNever keeps the
    /// interpreted lockstep walk.  Delta publishes share the retiring
    /// snapshot's program when the frozen arrays are unchanged.
    ProgramMode compile_program = ProgramMode::kAuto;
    /// Durable snapshot file (empty = off).  At construction a valid file
    /// here is warm-restored — the engine serves queries from it without
    /// paying the freeze/precompute cost — and every publish (including the
    /// initial one) atomically saves the fresh snapshot back.  A missing or
    /// corrupt file falls back to a normal build; a failed save is counted
    /// and tolerated (serving continues).  See snapshot.hpp and
    /// docs/architecture.md, "Fault tolerance & durability".
    std::string snapshot_path;
    /// Warm restore via mmap (README knob `snapshot_mmap`): map a v2
    /// snapshot file read-only instead of parsing it into the heap, so
    /// restore cost is page faults, not bytes, and the frozen arena is
    /// shared page cache across processes.  Falls back to an owned read
    /// when mmap is compiled out (APC_FORCE_NO_MMAP) or the file is v1.
    bool snapshot_mmap = true;
    /// How much of a mapped snapshot the restore prefaults (madvise
    /// WILLNEED): kHot = tree + match program, kAll = whole arena, kNone =
    /// pure demand paging.  Irrelevant for owned storage.
    PrefaultPolicy snapshot_prefault = PrefaultPolicy::kHot;
    /// Republication strategy: seed each new snapshot's behavior table and
    /// header cache from the retiring one (FlatSnapshot::build_delta) or
    /// start cold.  Delta publication is bit-equivalent to a full build for
    /// every query — only warm-up cost differs.
    SnapshotDeltaPolicy snapshot_delta = SnapshotDeltaPolicy::kAuto;
    /// kAuto threshold: use the delta path when the changed atoms
    /// (killed + added + dirty) are at most this fraction of the live atom
    /// count.  Above it most rows need recomputing anyway and the carry
    /// pass is pure overhead.
    double delta_max_dirty_fraction = 0.5;
    /// Admission cap: at most this many batch queries in flight at once.
    /// Excess classify_batch()/query_batch() calls fail fast with
    /// apc::Error(kUnavailable) (the try_* variants return nullopt instead)
    /// rather than piling onto the pool.  0 = unbounded.
    std::size_t max_pending_batches = 0;
    /// Epoch pinning (see server/cluster.hpp): when set, each publish keeps
    /// the retiring snapshot alive alongside the new one, so an epoch-pinned
    /// reader (snapshot_at) can still acquire the previous epoch while a
    /// multi-shard publication is in flight.  Off by default — a standalone
    /// engine should release retiring snapshots as soon as readers drop
    /// them, not hold a second copy of every frozen state.
    bool epoch_pin = false;
  };

  /// Builds the initial snapshot from `clf`.  The engine keeps a reference:
  /// `clf` must outlive it, and all mutations of `clf` must go through the
  /// engine (or through update()) so they are serialized and republished.
  QueryEngine(ApClassifier& clf, Options opts);
  explicit QueryEngine(ApClassifier& clf) : QueryEngine(clf, Options{}) {}

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  // ---- Read side (no locks held while querying) ----
  /// Acquires the current snapshot.  Hold it to answer any number of
  /// queries against one consistent frozen state.
  std::shared_ptr<const FlatSnapshot> snapshot() const { return snap_.load(); }

  AtomId classify(const PacketHeader& h) const { return snapshot()->classify(h); }
  Behavior query(const PacketHeader& h, BoxId ingress) const {
    return snapshot()->query(h, ingress);
  }

  /// Stage-1 classification of a whole batch, fanned across the pool.
  /// The entire batch is answered from a single snapshot.  Throws
  /// apc::Error(kUnavailable) when the admission cap is reached.
  std::vector<AtomId> classify_batch(const std::vector<PacketHeader>& hs) const;
  /// Two-stage queries for a whole batch (middlebox-free networks).
  std::vector<Behavior> query_batch(const std::vector<PacketHeader>& hs,
                                    BoxId ingress) const;
  /// Non-throwing admission variants: nullopt when the engine is saturated
  /// (Options::max_pending_batches) — shed load or retry later.
  std::optional<std::vector<AtomId>> try_classify_batch(
      const std::vector<PacketHeader>& hs) const;
  std::optional<std::vector<Behavior>> try_query_batch(
      const std::vector<PacketHeader>& hs, BoxId ingress) const;

  // ---- Epoch-pinned read side (the sharded cluster's entry points) ----
  // A cross-shard batch must never mix snapshot versions, so the cluster
  // pins one epoch, resolves it to a concrete snapshot per shard
  // (snapshot_at), and fans the shard's slice of the batch out against that
  // exact snapshot.  These run the same admission (RAII permit — released
  // on every path, including a worker-task throw), pool fan-out, and batch
  // observability as the unpinned variants.
  /// Fan `hs[0..n)` across the pool against caller-pinned snapshot `s`
  /// (which the caller must keep alive).  nullopt when saturated.
  std::optional<std::vector<AtomId>> try_classify_batch_on(
      const FlatSnapshot& s, const PacketHeader* hs, std::size_t n) const;
  /// Two-stage variant; requires a middlebox-free snapshot.
  std::optional<std::vector<Behavior>> try_query_batch_on(
      const FlatSnapshot& s, const PacketHeader* hs, std::size_t n,
      BoxId ingress) const;

  /// Epoch of the currently published snapshot.  Publishes tag the snapshot
  /// with set_next_publish_epoch()'s value when one is pending, otherwise
  /// the previous epoch + 1 — monotonic either way.  The initial snapshot
  /// is epoch 0.
  std::uint64_t snapshot_epoch() const { return snap_.epoch(); }
  /// The published snapshot tagged `epoch`: the current one, or — with
  /// Options::epoch_pin — the retained previous one.  nullptr when that
  /// epoch is no longer (or not yet) published; the caller re-pins.
  std::shared_ptr<const FlatSnapshot> snapshot_at(std::uint64_t epoch) const {
    return snap_.at(epoch);
  }
  /// Writer-side epoch hook: the next publish (only) is tagged `e` instead
  /// of auto-incrementing.  The cluster calls this under its own update
  /// serialization right before the mutation it forwards to update().
  void set_next_publish_epoch(std::uint64_t e) {
    std::lock_guard<std::mutex> lock(writer_mu_);
    next_epoch_ = e;
  }

  // ---- Write side (serialized; rebuild-and-swap publication) ----
  AddPredicateResult add_predicate(bdd::Bdd p,
                                   PredicateKind kind = PredicateKind::External,
                                   std::optional<PortId> origin = {});
  void remove_predicate(PredId id);
  ApClassifier::RuleUpdateResult insert_fib_rule(BoxId box, const ForwardingRule& r);
  ApClassifier::RuleUpdateResult remove_fib_rule(BoxId box, const ForwardingRule& r);
  ApClassifier::RuleUpdateResult set_input_acl(BoxId box, std::uint32_t port, Acl acl);
  /// Full reconstruction (optionally distribution-aware using the visit
  /// counts accumulated by retired snapshots), then republish.
  void rebuild(std::optional<BuildMethod> method = {}, bool distribution_aware = false);

  /// Applies an arbitrary mutation to the classifier under the writer lock
  /// and republishes.  Use for updates without a dedicated wrapper.
  /// Snapshot visit counts are drained into the classifier *before* `fn`
  /// runs, so a distribution-aware rebuild sees engine traffic and the
  /// counts are folded while atom ids still mean the same thing.
  template <typename Fn>
  auto update(Fn&& fn) {
    std::lock_guard<std::mutex> lock(writer_mu_);
    drain_visits_locked();
    if constexpr (std::is_void_v<decltype(fn(clf_))>) {
      fn(clf_);
      republish_locked();
    } else {
      auto res = fn(clf_);
      republish_locked();
      return res;
    }
  }

  // ---- Introspection ----
  const ApClassifier& classifier() const { return clf_; }
  std::size_t worker_threads() const { return pool_.thread_count(); }
  std::uint64_t publish_count() const {
    return publish_count_.load(std::memory_order_relaxed);
  }
  /// Publishes that went through FlatSnapshot::build_delta (subset of
  /// publish_count; the rest were full cold builds).
  const obs::Counter& snapshot_delta_publishes() const {
    return snapshot_delta_publishes_;
  }

  // ---- Observability (see src/obs/) ----
  /// Headers answered by classify_batch()/query_batch() since construction.
  /// Monotonic — feed it to obs::QpsMeter for engine-measured throughput.
  const obs::Counter& queries_answered() const { return queries_answered_; }
  /// Seconds since the current snapshot was published.
  double snapshot_age_seconds() const;

  // ---- Durability / degradation introspection ----
  /// Warm restores performed at construction (0 or 1).
  const obs::Counter& snapshot_restores() const { return snapshot_restores_; }
  /// Successful / failed durable snapshot saves.
  const obs::Counter& snapshot_saves() const { return snapshot_saves_; }
  const obs::Counter& snapshot_save_failures() const { return snapshot_save_failures_; }
  /// Batches refused by the admission cap.
  const obs::Counter& batches_rejected() const { return batches_rejected_; }
  /// Batch queries currently in flight (only tracked when the cap is set).
  std::size_t pending_batches() const {
    return pending_batches_.load(std::memory_order_acquire);
  }

  /// Registers the engine's metric inventory under `prefix`: batch latency
  /// histograms, batch sizes, publish count/age, pool counters, and the
  /// underlying classifier's metrics (under `<prefix>.classifier`).
  /// Classifier rows are callbacks into non-atomic state — snapshot the
  /// registry only while no update runs.  stats() does that for you.
  void register_metrics(obs::MetricsRegistry& reg,
                        const std::string& prefix = "engine") const;
  /// Full metric snapshot, materialized under the writer lock so callback
  /// metrics never race a concurrent update/rebuild.
  obs::MetricsSnapshot stats() const;

 private:
  /// Folds the current snapshot's visit counters into the classifier
  /// (atom ids are still aligned at this point).  Caller holds writer_mu_.
  void drain_visits_locked();
  /// Builds a fresh snapshot from the classifier and publishes it.
  /// Caller holds writer_mu_.
  void republish_locked();
  /// Saves the current snapshot to Options::snapshot_path (no-op when
  /// unset); failures are counted, never thrown.  Caller holds writer_mu_
  /// (or is the constructor).
  void persist_current_locked();

  /// RAII admission ticket for one in-flight batch (see
  /// Options::max_pending_batches).
  struct BatchTicket;
  bool admit_batch() const;
  void release_batch() const;

  /// Mutex-guarded publication slot (see the class comment for why this is
  /// not std::atomic<std::shared_ptr>).  load() copies the pointer under
  /// the lock; store() swaps it and drops the old snapshot outside the
  /// lock, so a snapshot's (potentially large) teardown never blocks
  /// readers acquiring the new one.  Each published snapshot carries an
  /// epoch tag; with retain_prev the retiring snapshot stays resolvable by
  /// its epoch (at()) until the publish after next — the window an
  /// epoch-pinned cluster reader needs.
  class SnapshotSlot {
   public:
    std::shared_ptr<const FlatSnapshot> load() const {
      std::lock_guard<std::mutex> lock(mu_);
      return ptr_;
    }
    std::uint64_t epoch() const {
      std::lock_guard<std::mutex> lock(mu_);
      return epoch_;
    }
    std::shared_ptr<const FlatSnapshot> at(std::uint64_t epoch) const {
      std::lock_guard<std::mutex> lock(mu_);
      if (ptr_ && epoch == epoch_) return ptr_;
      if (prev_ && epoch == prev_epoch_) return prev_;
      return nullptr;
    }
    void store(std::shared_ptr<const FlatSnapshot> next, std::uint64_t epoch,
               bool retain_prev) {
      std::shared_ptr<const FlatSnapshot> old_prev, old_cur;
      {
        std::lock_guard<std::mutex> lock(mu_);
        old_prev.swap(prev_);
        if (retain_prev) {
          prev_ = std::move(ptr_);
          prev_epoch_ = epoch_;
        } else {
          old_cur.swap(ptr_);
        }
        ptr_ = std::move(next);
        epoch_ = epoch;
      }
    }

   private:
    mutable std::mutex mu_;
    std::shared_ptr<const FlatSnapshot> ptr_;
    std::uint64_t epoch_ = 0;
    std::shared_ptr<const FlatSnapshot> prev_;
    std::uint64_t prev_epoch_ = 0;
  };

  ApClassifier& clf_;
  Options opts_;
  mutable util::TaskPool pool_;
  mutable std::mutex writer_mu_;
  SnapshotSlot snap_;
  std::atomic<std::uint64_t> publish_count_{0};
  /// One-shot epoch override for the next publish (see
  /// set_next_publish_epoch); nullopt = auto-increment.  Guarded by
  /// writer_mu_.
  std::optional<std::uint64_t> next_epoch_;

  // Batch-granular probes only: one timer + two histogram records per
  // *batch*, never per packet, so the per-query hot path stays untouched.
  mutable obs::LatencyHistogram classify_batch_hist_;  // ns per batch
  mutable obs::LatencyHistogram query_batch_hist_;     // ns per batch
  mutable obs::LatencyHistogram batch_size_hist_;      // headers per batch
  mutable obs::Counter queries_answered_;
  std::atomic<std::int64_t> last_publish_ns_{0};  // steady_clock epoch ns

  // Durability / degradation (see Options::snapshot_path and
  // Options::max_pending_batches).
  obs::Counter snapshot_restores_;
  obs::Counter snapshot_saves_;
  obs::Counter snapshot_save_failures_;
  mutable std::atomic<std::size_t> pending_batches_{0};
  mutable obs::Counter batches_rejected_;
  obs::Counter snapshot_delta_publishes_;
};

}  // namespace apc::engine
