#include "engine/program.hpp"

#include <algorithm>
#include <functional>
#include <unordered_map>

#include "util/error.hpp"
#include "util/stopwatch.hpp"

namespace apc::engine {

namespace {

/// Jump-field assembly: target-or-atom in the low bits, the instruction's
/// word index duplicated above, leaf flag on top.
std::uint32_t pack_jump(std::uint32_t jump, std::uint32_t word) {
  return (jump & (MatchProgram::kLeafBit | MatchProgram::kTargetMask)) |
         (word << MatchProgram::kWordShift);
}

}  // namespace

std::shared_ptr<const MatchProgram> MatchProgram::compile(
    const bdd::FlatBddNode* bdd_nodes, std::size_t bdd_count,
    const FlatTreeNode* tree, std::size_t tree_count, std::int32_t root,
    std::size_t max_bytes) {
  if (tree_count == 0 || root < 0) return nullptr;
  const std::size_t cap =
      max_bytes == 0 ? kMaxInstructions
                     : std::min(kMaxInstructions, max_bytes / sizeof(MatchInsn));
  Stopwatch sw;

  // Pass 1 — lower, tree nodes in reverse DFS order.  A node's true branch
  // continues at tree[idx + 1] and its false branch at tree[idx].right, and
  // both sit strictly after idx in DFS preorder, so walking idx backwards
  // guarantees every continuation's entry jump is already known.  Leaves
  // need no instruction at all: their entry IS a leaf-encoded jump.
  std::vector<MatchInsn> code;
  code.reserve(tree_count + bdd_count);
  std::vector<std::uint32_t> entry(tree_count, kLeafBit);
  // Per-tree-node memo: BDD ref -> emitted pc.  Valid only while the two
  // terminal continuations are fixed, i.e. within one tree node.
  std::unordered_map<std::uint32_t, std::uint32_t> memo;
  bool overflow = false;

  std::uint32_t true_cont = 0, false_cont = 0;
  const bdd::FlatBddNode* bdd = bdd_nodes;

  // Emits the program for the BDD rooted at `r`, returning its entry jump
  // (pc, or a leaf/continuation jump when `r` folds away).  Recursion depth
  // is bounded by the BDD's variable count (ROBDD paths are strictly
  // variable-increasing), not its node count.
  const std::function<std::uint32_t(std::uint32_t)> emit =
      [&](std::uint32_t r) -> std::uint32_t {
    if (overflow) return 0;
    if (r == bdd::kFalse) return false_cont;
    if (r == bdd::kTrue) return true_cont;
    if (const auto it = memo.find(r); it != memo.end()) return it->second;

    // Coalesce the maximal Click-style chain starting at r: consecutive
    // bit-tests on the same 32-bit header word whose fail edges all reach
    // the same continuation collapse into one mask-and-compare.  Each node
    // contributes its bit to the mask; the bit's required value is 1 when
    // the chain continues through the hi edge and 0 through the lo edge.
    const std::uint32_t word = bdd[r].var >> 5;
    std::uint32_t mask = 0, value = 0;
    std::uint32_t cur = r;
    bool pass_hi;
    std::uint32_t fail_ref;
    {
      // First link: either edge may be the fail side.  Prefer the choice
      // that lets the chain extend; default to hi-pass (positive literal).
      const bdd::FlatBddNode& n = bdd[cur];
      const auto extends = [&](std::uint32_t pass, std::uint32_t fail) {
        return pass > bdd::kTrue && (bdd[pass].var >> 5) == word &&
               (bdd[pass].lo == fail || bdd[pass].hi == fail);
      };
      if (extends(n.hi, n.lo)) {
        pass_hi = true;
        fail_ref = n.lo;
      } else if (extends(n.lo, n.hi)) {
        pass_hi = false;
        fail_ref = n.hi;
      } else {
        pass_hi = true;
        fail_ref = n.lo;
      }
    }
    std::uint32_t pass_ref;
    while (true) {
      const bdd::FlatBddNode& n = bdd[cur];
      const std::uint32_t bit = 1u << (n.var & 31u);
      mask |= bit;
      if (pass_hi) value |= bit;
      pass_ref = pass_hi ? n.hi : n.lo;
      if (pass_ref <= bdd::kTrue) break;
      const bdd::FlatBddNode& nx = bdd[pass_ref];
      if ((nx.var >> 5) != word) break;
      if (nx.lo == fail_ref) {
        cur = pass_ref;
        pass_hi = true;
      } else if (nx.hi == fail_ref) {
        cur = pass_ref;
        pass_hi = false;
      } else {
        break;
      }
    }

    const std::uint32_t on_match = emit(pass_ref);
    const std::uint32_t on_fail = emit(fail_ref);
    if (overflow) return 0;
    if (code.size() >= cap) {
      overflow = true;
      return 0;
    }
    const std::uint32_t pc = static_cast<std::uint32_t>(code.size());
    code.push_back(
        {mask, value, pack_jump(on_match, word), pack_jump(on_fail, word)});
    memo.emplace(r, pc);
    return pc;
  };

  for (std::int32_t idx = static_cast<std::int32_t>(tree_count) - 1; idx >= 0;
       --idx) {
    const FlatTreeNode& t = tree[idx];
    if (t.right == kLeaf) {
      require((t.bdd_root & ~kTargetMask) == 0,
              "MatchProgram: atom id exceeds 27-bit jump encoding");
      entry[idx] = kLeafBit | t.bdd_root;
      continue;
    }
    true_cont = entry[idx + 1];
    false_cont = entry[t.right];
    memo.clear();
    entry[idx] = emit(t.bdd_root);
    if (overflow) return nullptr;
  }

  // Pass 2 — layout.  Pass 1 emitted continuations before consumers, so the
  // entry sits at the END of `code` and a walk streams backwards.  Renumber
  // in DFS preorder from the entry, match edge first: the all-match path of
  // any walk becomes forward-contiguous, and instructions unreachable from
  // the entry (lowered for tree nodes a constant predicate skips) drop out.
  auto prog = std::shared_ptr<MatchProgram>(new MatchProgram());
  constexpr std::uint32_t kUnplaced = 0xFFFFFFFFu;
  std::vector<std::uint32_t> newpc(code.size(), kUnplaced);
  std::vector<std::uint32_t> order;
  order.reserve(code.size());
  if ((entry[root] & kLeafBit) == 0) {
    std::vector<std::uint32_t> stack{entry[root] & kTargetMask};
    while (!stack.empty()) {
      const std::uint32_t pc = stack.back();
      stack.pop_back();
      if (newpc[pc] != kUnplaced) continue;
      newpc[pc] = static_cast<std::uint32_t>(order.size());
      order.push_back(pc);
      const MatchInsn& insn = code[pc];
      if ((insn.on_fail & kLeafBit) == 0)
        stack.push_back(insn.on_fail & kTargetMask);
      if ((insn.on_match & kLeafBit) == 0)  // pushed last: popped (placed) first
        stack.push_back(insn.on_match & kTargetMask);
    }
  }
  prog->insns_.reserve(order.size());
  const auto relabel = [&](std::uint32_t jump) {
    if (jump & kLeafBit) return jump;
    return (jump & ~kTargetMask) | newpc[jump & kTargetMask];
  };
  for (const std::uint32_t pc : order) {
    MatchInsn insn = code[pc];
    insn.on_match = relabel(insn.on_match);
    insn.on_fail = relabel(insn.on_fail);
    prog->insns_.push_back(insn);
  }
  prog->entry_ = relabel(entry[root]);
  prog->code_ = prog->insns_.data();
  prog->code_count_ = prog->insns_.size();
  prog->compile_seconds_ = sw.seconds();
  return prog;
}

std::shared_ptr<const MatchProgram> MatchProgram::adopt(
    const MatchInsn* code, std::size_t count, std::uint32_t entry,
    std::shared_ptr<const void> keepalive, double compile_seconds) {
  require(keepalive != nullptr, "MatchProgram::adopt: keepalive required");
  auto prog = std::shared_ptr<MatchProgram>(new MatchProgram());
  prog->code_ = code;
  prog->code_count_ = count;
  prog->keepalive_ = std::move(keepalive);
  prog->entry_ = entry;
  prog->compile_seconds_ = compile_seconds;
  return prog;
}

void MatchProgram::run_batch(const PacketHeader* hs, const std::size_t* which,
                             std::size_t n, AtomId* out,
                             KernelKind kernel) const {
  if (n == 0) return;
  if (kernel == KernelKind::kAvx2 && avx2_available())
    run_batch_avx2(hs, which, n, out);
  else
    run_batch_scalar(hs, which, n, out);
}

#if !defined(APC_HAVE_AVX2_KERNEL)
// AVX2 kernel compiled out (non-x86 target or -DAPC_ENABLE_AVX2=OFF): the
// dispatcher only ever sees the scalar path.
bool MatchProgram::avx2_available() { return false; }
void MatchProgram::run_batch_avx2(const PacketHeader* hs,
                                  const std::size_t* which, std::size_t n,
                                  AtomId* out) const {
  run_batch_scalar(hs, which, n, out);
}
#endif

}  // namespace apc::engine
