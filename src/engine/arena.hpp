// Arena — a single relocatable, page-aligned, offset-addressed allocation
// holding everything a frozen FlatSnapshot needs at query time: the flat BDD
// node array, the DFS-preorder tree, the stage-2 boxes/ports/ACL records,
// the shared bitset word pool, the compiled match program, and the atom
// metadata (header).
//
// Why one arena instead of a bag of vectors: the on-disk snapshot format can
// then BE the in-memory format.  Every internal reference is a byte offset
// from the arena base (ArenaRef) or a word index into the shared bitset pool
// (BitsRef) — never a pointer — so the same bytes are valid at any base
// address.  snapshot_io.cpp saves an arena with one contiguous write and
// restores it either by mmap'ing the file (warm restore costs page faults,
// not a parse) or by reading it into an owned buffer when mmap is
// unavailable (APC_FORCE_NO_MMAP, non-POSIX) or disabled by options.
//
// Invariants (enforced by ArenaBuilder, revalidated by snapshot_io on load):
//   * The ArenaHeader lives at offset 0; `magic`/`layout_version` gate every
//     other read.
//   * Every section offset is kAlign (64)-byte aligned and the payload of
//     section records is plain-old-data with fixed sizes (static_asserts
//     below), so in-place reinterpret_cast is portable across processes of
//     the same ABI (the file header's endian sentinel rejects the rest).
//   * Sections never overlap and stay inside [0, size) — ref_ok() is the
//     loader's bounds check.
//   * Bytes between sections (alignment padding, header reserve) are zero,
//     so a saved arena's CRC is a pure function of its logical content.
//
// Lifetime: arenas are immutable after ArenaBuilder::finish() and always
// held by shared_ptr<const Arena>.  FlatSnapshot keeps one reference and the
// adopted MatchProgram keeps another, so RCU republication can retire a
// snapshot whose storage is a mapped file safely: the munmap happens only
// when the last reader drops its reference.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "packet/header.hpp"
#include "util/error.hpp"

namespace apc::engine {

/// A section of the arena: `off` bytes from the arena base, `count`
/// elements.  The element size is implied by the section (the templated
/// accessors take it), keeping the record layout-version-stable.
struct ArenaRef {
  std::uint64_t off = 0;
  std::uint64_t count = 0;
};
static_assert(sizeof(ArenaRef) == 16);

/// A bitset stored in the arena's shared word pool: `word_off` indexes u64
/// words (not bytes), `nbits` is the logical domain.  nbits == 0 is the
/// frozen form of a deleted predicate: test() is false for every atom.
struct BitsRef {
  std::uint64_t word_off = 0;
  std::uint64_t nbits = 0;

  std::uint64_t word_count() const { return (nbits + 63) / 64; }
  /// Test bit `i` against the pool this ref indexes into.
  bool test(const std::uint64_t* pool, std::size_t i) const {
    return i < nbits && ((pool[word_off + (i >> 6)] >> (i & 63)) & 1) != 0;
  }
};
static_assert(sizeof(BitsRef) == 16);

/// Frozen per-port stage-2 entry (one element of the global `ports`
/// section; a box's ports are the contiguous run its ArenaBox names).
struct ArenaPortEntry {
  std::uint32_t port = 0;
  std::int32_t peer_box = -1;  ///< -1: host port (delivery terminates)
  std::uint32_t peer_port = 0;
  std::uint32_t has_out_acl = 0;
  BitsRef fwd_atoms;     ///< forwarding set R(p)
  BitsRef out_acl_atoms;
};
static_assert(sizeof(ArenaPortEntry) == 48);

/// Frozen input-ACL slot (indexed by in-port within a box's `acl` run).
struct ArenaInAcl {
  std::uint32_t present = 0;
  std::uint32_t pad_ = 0;
  BitsRef atoms;
};
static_assert(sizeof(ArenaInAcl) == 24);

/// One network box: index ranges into the global `ports` / `in_acls`
/// sections.
struct ArenaBox {
  std::uint32_t port_begin = 0;
  std::uint32_t port_count = 0;
  std::uint32_t acl_begin = 0;
  std::uint32_t acl_count = 0;
};
static_assert(sizeof(ArenaBox) == 16);

/// Offset 0 of every arena.  192 bytes = 3 cache lines, all sections named
/// by ArenaRef so the layout can evolve without moving the header.
struct ArenaHeader {
  static constexpr char kMagic[8] = {'A', 'P', 'C', 'A', 'R', 'N', 'A', '1'};
  static constexpr std::uint32_t kLayoutVersion = 1;

  enum Flags : std::uint32_t {
    kHasMiddleboxes = 1u << 0,
    kTracksVisits = 1u << 1,
    kHasProgram = 1u << 2,  ///< the `program` section holds a compiled MatchProgram
  };

  char magic[8] = {};
  std::uint32_t layout_version = 0;
  std::uint32_t flags = 0;
  std::uint64_t arena_bytes = 0;  ///< total size including this header
  std::uint64_t atom_capacity = 0;
  std::int32_t tree_root = -1;
  std::uint32_t program_entry = 0;  ///< MatchProgram entry jump (valid iff kHasProgram)
  /// Union of header bits any frozen BDD node tests — the HeaderAtomCache
  /// canonicalization mask, persisted so a mapped load never re-derives it.
  std::uint64_t tested_bits[PacketHeader::kWords] = {};

  ArenaRef bdd_nodes;  ///< bdd::FlatBddNode
  ArenaRef tree;       ///< FlatTreeNode
  ArenaRef boxes;      ///< ArenaBox
  ArenaRef ports;      ///< ArenaPortEntry
  ArenaRef in_acls;    ///< ArenaInAcl
  ArenaRef words;      ///< std::uint64_t bitset word pool
  ArenaRef program;    ///< MatchInsn (count == 0 when kHasProgram is clear)
};
static_assert(PacketHeader::kWords == 5, "ArenaHeader::tested_bits layout");
static_assert(sizeof(ArenaHeader) == 192, "header must stay 3 cache lines");

class Arena {
 public:
  static constexpr std::size_t kAlign = 64;

  enum class Storage : std::uint8_t {
    kOwned,   ///< 64-byte-aligned heap buffer this Arena frees
    kMapped,  ///< read-only file mapping this Arena munmaps
  };

  ~Arena();
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  const std::byte* base() const { return base_; }
  std::size_t size() const { return size_; }
  Storage storage() const { return storage_; }
  bool mapped() const { return storage_ == Storage::kMapped; }
  const ArenaHeader& header() const {
    return *reinterpret_cast<const ArenaHeader*>(base_);
  }

  template <typename T>
  const T* ptr(const ArenaRef& r) const {
    return reinterpret_cast<const T*>(base_ + r.off);
  }

  /// Loader-side bounds check: the section lies inside the arena, is
  /// kAlign-aligned, and count * sizeof(T) does not overflow.
  template <typename T>
  bool ref_ok(const ArenaRef& r) const {
    if (r.count == 0) return r.off <= size_;
    if (r.off % kAlign != 0 || r.off < sizeof(ArenaHeader) || r.off > size_)
      return false;
    return r.count <= (size_ - r.off) / sizeof(T);
  }

  /// Hints the kernel to fault in a section ahead of use (madvise
  /// WILLNEED).  No-op for owned storage or when mmap support is compiled
  /// out.  Never fails: prefaulting is purely advisory.
  void prefault(const ArenaRef& r, std::size_t elem_size) const;
  void prefault_all() const;

  /// Wraps a buffer produced by ArenaBuilder (64-byte-aligned, allocated
  /// with std::aligned_alloc; ownership transfers).
  static std::shared_ptr<const Arena> adopt_owned(void* buf, std::size_t size);

  /// Maps `[file_offset, file_offset + len)` of `fd` read-only and treats it
  /// as the arena (file_offset must be page-aligned; the fd may be closed by
  /// the caller afterwards).  Throws Error(kIo) on mmap failure and
  /// Error(kUnavailable) when mmap support is compiled out
  /// (APC_FORCE_NO_MMAP) — callers fall back to an owned read.
  static std::shared_ptr<const Arena> map_file(int fd, std::size_t file_offset,
                                               std::size_t len);

  /// False when the mmap path is compiled out (APC_FORCE_NO_MMAP or a
  /// non-POSIX build) — load_snapshot then always takes the owned-read path.
  static bool mmap_supported();

 private:
  Arena() = default;

  const std::byte* base_ = nullptr;
  std::size_t size_ = 0;
  Storage storage_ = Storage::kOwned;
  void* map_addr_ = nullptr;  ///< mmap base (== base_ - page offset slack)
  std::size_t map_len_ = 0;
};

/// Two-phase builder: reserve() every section (recording 64-byte-aligned
/// offsets), allocate() once, copy the payloads in, finish().  The single
/// exact-size aligned allocation is what makes "save = one contiguous
/// write" true, and the zero-fill before the copies is what makes padding
/// deterministic.
class ArenaBuilder {
 public:
  ArenaBuilder() { cursor_ = align_up(sizeof(ArenaHeader)); }
  ~ArenaBuilder();
  ArenaBuilder(const ArenaBuilder&) = delete;
  ArenaBuilder& operator=(const ArenaBuilder&) = delete;

  /// Phase 1: lay out a section of `count` elements of type T.
  template <typename T>
  ArenaRef reserve(std::size_t count) {
    require(buf_ == nullptr, "ArenaBuilder: reserve after allocate");
    ArenaRef r;
    r.off = cursor_;
    r.count = count;
    cursor_ = align_up(cursor_ + count * sizeof(T));
    return r;
  }

  /// Phase 2: allocate the zero-filled buffer (all reserves done).
  void allocate();

  /// Phase 3: writable view of a reserved section.
  template <typename T>
  T* section(const ArenaRef& r) {
    require(buf_ != nullptr, "ArenaBuilder: section before allocate");
    return reinterpret_cast<T*>(static_cast<std::byte*>(buf_) + r.off);
  }
  /// The header (valid after allocate; magic/version/arena_bytes are set by
  /// allocate, everything else is the caller's).
  ArenaHeader& header() {
    require(buf_ != nullptr, "ArenaBuilder: header before allocate");
    return *static_cast<ArenaHeader*>(buf_);
  }

  /// Seals the arena and transfers ownership.
  std::shared_ptr<const Arena> finish();

 private:
  static std::size_t align_up(std::size_t n) {
    return (n + Arena::kAlign - 1) & ~(Arena::kAlign - 1);
  }

  std::size_t cursor_ = 0;
  std::size_t size_ = 0;
  void* buf_ = nullptr;
};

}  // namespace apc::engine
