// FlatSnapshot — an immutable, manager-free freeze of the AP Tree and every
// node predicate's BDD, plus the stage-2 forwarding state, built for the
// concurrent query engine.
//
// Why it exists: ApTree::classify walks BDD nodes through the shared
// BddManager (handle deref -> manager -> node pool) on every predicate
// evaluation.  That path is single-threaded by construction — the manager's
// pool, unique table, and GC are shared mutable state.  A FlatSnapshot
// freezes everything stage 1 and the middlebox-free stage 2 need into
// contiguous arrays indexed by dense ids — and then accelerates the query
// path in three layers (see docs/architecture.md, "Query path"):
//
//   1. Behavior tables.  The paper's central observation (SS IV) is that the
//      atom fixes the truth value of every predicate, so the network-wide
//      behavior is a pure function of (atom, ingress).  At freeze time the
//      dense atom x ingress table is precomputed (parallelized over a
//      util::TaskPool) when it fits `Options::behavior_table_budget`, or
//      lazily filled per cell (CAS pointer publish) above it; behavior_of()
//      is then a table read.  The topology walk survives as behavior_walk()
//      — the table filler and the differential-test oracle.
//   2. Header -> atom cache.  A sharded, lock-free HeaderAtomCache keyed on
//      the canonicalized header bits the predicates actually test sits in
//      front of the tree walk; hot flows (real traffic is Zipfian, SS VII)
//      skip the tree entirely.  The cache lives inside the snapshot, so a
//      republish invalidates it wholesale and stale hits cannot exist.
//   3. Layout + batching.  Tree nodes are 8 bytes in DFS preorder (the
//      true-branch child is the next element; only the false-branch index
//      is stored) and BDD nodes are reordered DFS-contiguous in tree order,
//      so a walk touches a hot prefix of both arrays.  classify_into()
//      advances several headers through the tree in lockstep with software
//      prefetch, hiding the dependent-load DRAM latency of cold walks.
//
// Storage: everything frozen lives in ONE relocatable Arena (engine/
// arena.hpp) — BDD array, tree, stage-2 records, bitset word pool, compiled
// match program, atom metadata — addressed by offsets from the arena base.
// The arena is either an owned 64-byte-aligned heap buffer (built in
// memory) or a read-only mmap of a v2 snapshot file (warm restore: page
// faults instead of a parse).  Runtime accelerator state (behavior-table
// cells, header cache, visit counters) stays on the heap: it is mutable,
// per-process, and intentionally not persisted.  The snapshot and its
// adopted MatchProgram each hold a shared_ptr to the arena, so RCU
// retirement of a mapped snapshot munmaps only after the last reader left.
//
// Classification stays a pure array walk: no BddManager, no ref-count
// traffic, no locks — safe from any number of threads.  Mutable members are
// the per-atom stats block, the cache slots, and the lazily published table
// cells, all engineered to be data-race-free under concurrent const use.
//
// Snapshots are published RCU-style by engine::QueryEngine: writers rebuild
// off to the side and atomically swap a shared_ptr<const FlatSnapshot>.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "bdd/bdd.hpp"
#include "classifier/classifier.hpp"
#include "engine/arena.hpp"
#include "engine/header_cache.hpp"
#include "engine/program.hpp"
#include "obs/metrics.hpp"
#include "util/bitset.hpp"
#include "util/task_pool.hpp"
#include "util/visit_counters.hpp"

namespace apc::engine {

/// How much of a mapped snapshot load_snapshot() asks the kernel to fault
/// in ahead of first use (madvise WILLNEED).  Irrelevant for owned storage.
enum class PrefaultPolicy : std::uint8_t {
  kNone,  ///< demand paging only
  kHot,   ///< tree + match program (the per-query hot sections)
  kAll,   ///< the whole arena
};

class FlatSnapshot {
 public:
  /// Query-path acceleration knobs (see the class comment; README "Query
  /// engine" lists them too).
  struct Options {
    /// Memory budget in bytes for the (atom x ingress) behavior table.
    /// Below the budget the table is fully precomputed at build time; when
    /// only the cell-pointer array fits, cells fill lazily on first use;
    /// 0 disables the table entirely (every behavior_of() walks).
    std::size_t behavior_table_budget = 64u << 20;
    /// Header -> atom cache capacity in slots (rounded up to a power of
    /// two; ~64 bytes per slot).  0 disables the cache.
    std::size_t header_cache_capacity = 1u << 15;
    /// Cache shard count (power of two).  0 = auto (one shard per 256
    /// slots, at most 64).
    std::size_t header_cache_shards = 0;
    /// Whether to compile the frozen tree+BDDs into a flat match program
    /// (engine/program.hpp) at build time.  kAuto compiles when the program
    /// fits MatchProgram::kAutoProgramBytes; kNever keeps the interpreted
    /// lockstep walk (the program-less behavior).  Cache misses in
    /// classify()/classify_into() route through the program when present.
    ProgramMode compile_program = ProgramMode::kAuto;
    /// load_snapshot() only: mmap a v2 snapshot file instead of reading it
    /// into an owned buffer (README knob `snapshot_mmap`).  Ignored — with
    /// an automatic owned-read fallback — when mmap support is compiled out
    /// (APC_FORCE_NO_MMAP) or the file is v1.
    bool mmap_load = true;
    /// load_snapshot() only: prefault policy for mapped arenas.
    PrefaultPolicy prefault = PrefaultPolicy::kHot;
  };

  enum class BehaviorTableMode : std::uint8_t { kDisabled, kLazy, kPrecomputed };

  /// Freezes the classifier's current tree, predicates, and compiled
  /// network.  Pure read of the classifier — call from the writer side only
  /// (it must not race with classifier mutations).  Visit tracking follows
  /// the classifier's `track_visits` option.  `pool`, when given, fans the
  /// eager behavior-table fill across its workers (the query engine passes
  /// its own pool); nullptr fills serially.
  static std::shared_ptr<const FlatSnapshot> build(const ApClassifier& clf,
                                                   const Options& opts,
                                                   util::TaskPool* pool = nullptr);
  /// Default-options build (overload: a default `Options{}` argument cannot
  /// appear inside the enclosing class).
  static std::shared_ptr<const FlatSnapshot> build(const ApClassifier& clf) {
    return build(clf, Options{});
  }

  /// Delta-assisted build: freezes the classifier like build(), then seeds
  /// the new snapshot's accelerators from the retiring one instead of
  /// starting them cold.  `delta` is the classifier's accumulated atom delta
  /// since `prev` was published (ApClassifier::take_atom_delta):
  ///   * Behavior-table rows of atoms untouched by the delta are deep-copied
  ///     from `prev` (only rows owned by killed/added/dirty atoms are
  ///     recomputed) — gated on identical stage-2 shape, so any structural
  ///     network change falls back to recomputing everything.
  ///   * Header-cache entries survive when the new tested-bits mask is a
  ///     subset of the old one (re-masked; entries of killed atoms evicted).
  /// Always safe: every carry condition is checked here, so a caller may
  /// pass any prev/delta pair and only loses the acceleration.  Reading
  /// `prev` concurrently with its own query traffic is safe (atomic cell
  /// loads, seqlock-validated cache reads).
  static std::shared_ptr<const FlatSnapshot> build_delta(const ApClassifier& clf,
                                                         const Options& opts,
                                                         util::TaskPool* pool,
                                                         const FlatSnapshot& prev,
                                                         const AtomDelta& delta);

  ~FlatSnapshot();

  // ---- Stage 1 (lock-free, const, thread-safe) ----
  /// Cache-assisted classification: header-cache probe, tree walk on miss.
  AtomId classify(const PacketHeader& h) const;
  /// Pure tree walk, never consulting the cache — the stage-1 oracle.
  AtomId classify_walk(const PacketHeader& h) const;
  /// Pure walk, also reporting the number of predicates evaluated (leaf
  /// depth).  Bypasses the cache so the count is always the tree's.
  AtomId classify_counted(const PacketHeader& h, std::size_t& evals) const;
  /// Batch classification into `out[0..n)`: probes the cache for every
  /// header, then advances all misses through the tree in lockstep with
  /// software prefetch.  Equivalent to classify() per element.
  void classify_into(const PacketHeader* hs, std::size_t n, AtomId* out) const;

  // ---- Stage 2 (middlebox-free; mirrors compute_behavior exactly) ----
  /// Table-assisted behavior: one acquire load on the precomputed/lazy
  /// table (filling the cell on first touch in lazy mode); falls back to
  /// the walk when the table is disabled.
  Behavior behavior_of(AtomId atom, BoxId ingress) const;
  /// The retained topology walk — table filler and differential oracle.
  /// Mirrors compute_behavior_into (classifier/behavior.cpp) step for step.
  Behavior behavior_walk(AtomId atom, BoxId ingress) const;

  /// Two-stage query.  Requires a middlebox-free network: header-rewriting
  /// middleboxes need tree re-searches against live flow tables, which is
  /// the classifier's (writer-side) job.
  Behavior query(const PacketHeader& h, BoxId ingress) const;

  // ---- Introspection / stats ----
  bool has_middleboxes() const { return has_middleboxes_; }
  bool tracks_visits() const { return visits_.size() > 0; }
  /// Point-in-time copy of the per-atom visit counters (empty when visit
  /// tracking is off).  QueryEngine drains these into the classifier when
  /// the snapshot is retired.
  std::vector<std::uint64_t> visit_counts() const { return visits_.to_vector(); }

  std::size_t bdd_node_count() const { return bdd_count_; }
  std::size_t tree_node_count() const { return tree_count_; }
  std::size_t atom_capacity() const { return atom_capacity_; }
  std::size_t box_count() const { return box_count_; }

  /// Where the frozen arena lives: an owned heap buffer (built in process
  /// or loaded without mmap) or a read-only file mapping.
  Arena::Storage storage() const { return arena_->storage(); }
  /// Heap bytes this snapshot owns: the arena when owned, the visit
  /// counters, the behavior table (cells + published behaviors), the header
  /// cache, and a load-time-compiled program.
  std::size_t owned_bytes() const;
  /// Bytes of the mapped snapshot file (0 for owned storage).  Shared page
  /// cache, not private RSS — reported separately for exactly that reason.
  std::size_t mapped_bytes() const;
  /// Total footprint: owned_bytes() + mapped_bytes().
  std::size_t memory_bytes() const { return owned_bytes() + mapped_bytes(); }

  BehaviorTableMode behavior_table_mode() const { return table_mode_; }
  /// Cells published so far (== all live cells after an eager build;
  /// grows monotonically in lazy mode).
  std::uint64_t behavior_table_fills() const { return table_fills_.value(); }
  /// Wall-clock seconds the eager table precompute took (0 when lazy/off).
  double behavior_table_build_seconds() const { return table_build_seconds_; }
  /// nullptr when the cache is disabled.
  const HeaderAtomCache* header_cache() const { return cache_.get(); }
  /// Cache traffic counters, folded in by classify()/classify_into().
  std::uint64_t header_cache_hits() const { return cache_hits_.value(); }
  std::uint64_t header_cache_misses() const { return cache_misses_.value(); }
  /// Accelerator state inherited from the previous snapshot by
  /// build_delta() (0 after a full build): behavior-table cells deep-copied
  /// and header-cache entries re-inserted.
  std::uint64_t behavior_rows_carried() const { return rows_carried_; }
  std::uint64_t header_entries_carried() const { return cache_entries_carried_; }

  // ---- Compiled match program (engine/program.hpp) ----
  /// nullptr when compilation is off (Options) or the program exceeded its
  /// budget — classify falls back to the interpreted lockstep walk.
  const MatchProgram* program() const { return program_.get(); }
  std::size_t program_instructions() const {
    return program_ ? program_->instruction_count() : 0;
  }
  std::size_t program_bytes() const { return program_ ? program_->bytes() : 0; }
  /// Wall-clock seconds the compile took (0 when absent or delta-carried).
  double program_compile_seconds() const {
    return program_ ? program_->compile_seconds() : 0.0;
  }
  /// Kernel batch classification dispatches to: 0 = no program (interpreted
  /// walk), 1 = scalar, 2 = AVX2.  Matches the obs `kernel_dispatch` row.
  int kernel_dispatch() const {
    return program_ ? static_cast<int>(program_->dispatch_kernel()) : 0;
  }
  /// True when build_delta() reused the previous snapshot's program instead
  /// of recompiling (frozen tree+BDD arrays were unchanged; the instruction
  /// bytes are still copied into this snapshot's own arena).
  bool program_carried() const { return program_carried_; }

 private:
  FlatSnapshot() = default;

  friend void save_snapshot(const FlatSnapshot& snap, const std::string& path);
  friend void save_snapshot_v1(const FlatSnapshot& snap, const std::string& path);
  friend std::shared_ptr<const FlatSnapshot> load_snapshot(const std::string& path,
                                                           const Options& opts);

  /// The frozen core as plain vectors — the intermediate between "walk the
  /// classifier" (freeze_core) or "parse a v1 file" (load_snapshot) and the
  /// single-arena form (from_core).  Never outlives the build.
  struct CoreData {
    std::vector<bdd::FlatBddNode> bdd_nodes;
    std::vector<FlatTreeNode> tree;
    std::int32_t tree_root = 0;
    std::vector<ArenaBox> boxes;
    std::vector<ArenaPortEntry> ports;
    std::vector<ArenaInAcl> in_acls;
    std::vector<std::uint64_t> words;  ///< shared bitset pool
    std::size_t atom_capacity = 0;
    bool has_middleboxes = false;
    bool tracks_visits = false;

    /// Appends a bitset to the word pool and returns its ref.
    BitsRef intern_bits(const FlatBitset& b);
  };

  /// Freezes the classifier's tree, predicates, and stage-2 state into
  /// CoreData (no accelerators) — shared by build() and build_delta().
  /// Only tree nodes reachable from the root are frozen; garbage left
  /// behind by incremental deletes (which may reference deleted predicates)
  /// is never consulted.
  static CoreData freeze_core(const ApClassifier& clf);

  /// Assembles CoreData (plus an optional carried program) into one owned
  /// arena, compiles the match program per `opts` when not carried, and
  /// returns the snapshot with accelerators initialized.
  static std::shared_ptr<FlatSnapshot> from_core(CoreData&& core,
                                                 const Options& opts,
                                                 const MatchProgram* carried);

  /// Wraps an existing (validated) arena — the mmap / owned-read load path.
  /// Adopts the arena's program section when present, else compiles per
  /// `opts`.
  static std::shared_ptr<FlatSnapshot> from_arena(
      std::shared_ptr<const Arena> arena, const Options& opts);

  /// Resolves the member views against arena_'s header and initializes the
  /// runtime accelerators (cache, table, program) — tail of both paths.
  void adopt_arena(std::shared_ptr<const Arena> arena, const Options& opts,
                   double compile_seconds, bool carried);

  /// Builds the header cache and the behavior-table cell array from the
  /// frozen core arrays per `opts` (table mode becomes kLazy when the cell
  /// array fits the budget; build() upgrades to kPrecomputed after an eager
  /// fill).
  void init_accelerators(const Options& opts);

  /// Upgrades a lazy table to an eager precompute when the estimated full
  /// footprint fits the budget.  Cells already published (delta carry-over)
  /// are kept, not recomputed.
  void maybe_precompute(const ApClassifier& clf, const Options& opts,
                        util::TaskPool* pool);

  /// True when `prev` froze an identical stage-2 shape (same boxes, ports,
  /// peers, ACL placement) — the carry-over precondition for behavior rows.
  bool same_stage2_shape(const FlatSnapshot& prev) const;

  /// Lockstep tree walk over `n` headers; `which`, when non-null, selects
  /// the header/output indices to process (the cache-miss list).
  void classify_lockstep(const PacketHeader* hs, const std::size_t* which,
                         std::size_t n, AtomId* out) const;
  /// Same contract; runs the compiled match program's kernel when present
  /// (bumping visit counters from the outputs), the lockstep walk otherwise.
  void classify_batch(const PacketHeader* hs, const std::size_t* which,
                      std::size_t n, AtomId* out) const;
  /// Publishes the walk result into `cell` (first writer wins); returns the
  /// published pointer either way.
  const Behavior* fill_cell(std::atomic<const Behavior*>& cell, AtomId atom,
                            BoxId ingress) const;

  bool bits_test(const BitsRef& b, std::size_t i) const {
    return b.test(words_, i);
  }

  // ---- The frozen core: views into arena_ (relocatable offsets resolved
  // once in adopt_arena; immutable afterwards) ----
  std::shared_ptr<const Arena> arena_;
  const bdd::FlatBddNode* bdd_nodes_ = nullptr;
  std::size_t bdd_count_ = 0;
  const FlatTreeNode* tree_ = nullptr;
  std::size_t tree_count_ = 0;
  std::int32_t tree_root_ = -1;
  const ArenaBox* boxes_ = nullptr;
  std::size_t box_count_ = 0;
  const ArenaPortEntry* ports_ = nullptr;
  const ArenaInAcl* in_acls_ = nullptr;
  const std::uint64_t* words_ = nullptr;

  std::size_t atom_capacity_ = 0;
  bool has_middleboxes_ = false;
  mutable VisitCounters visits_;  ///< stats only; empty unless tracking

  // ---- Behavior table (layer 1) ----
  BehaviorTableMode table_mode_ = BehaviorTableMode::kDisabled;
  std::size_t table_cells_ = 0;  ///< atom_capacity_ * box_count_ when on
  std::unique_ptr<std::atomic<const Behavior*>[]> table_;
  mutable obs::Counter table_fills_;
  mutable std::atomic<std::size_t> table_heap_bytes_{0};
  double table_build_seconds_ = 0.0;

  // ---- Header cache (layer 2) ----
  std::unique_ptr<HeaderAtomCache> cache_;
  mutable obs::Counter cache_hits_;
  mutable obs::Counter cache_misses_;

  // ---- Compiled match program (layer 3b; immutable after build) ----
  std::shared_ptr<const MatchProgram> program_;
  bool program_carried_ = false;

  // ---- Delta carry-over accounting (build_delta only; immutable after) ----
  std::uint64_t rows_carried_ = 0;
  std::uint64_t cache_entries_carried_ = 0;
};

// ---- Durable snapshot persistence (snapshot_io.cpp) ----
// See docs/architecture.md, "Fault tolerance & durability" and "Snapshot
// memory layout & warm restore".

/// Atomically writes the snapshot to `path` in the v2 format: a 4 KiB file
/// header (magic/version/endianness, arena length, CRC32C) followed by the
/// arena bytes verbatim — ONE contiguous image, page-aligned in the file so
/// load_snapshot can mmap it.  Serialize to `path + ".tmp"`, fsync, rename
/// over the target, fsync the directory (fault site `snapshot.save.dirsync`),
/// so a crash at any point leaves either the old file or the new one.
/// Throws apc::Error(kIo) on filesystem failure.  Runtime accelerator state
/// (header cache contents, lazily filled behavior cells, visit counters) is
/// intentionally not persisted — it regenerates.
void save_snapshot(const FlatSnapshot& snap, const std::string& path);

/// Writes the legacy v1 format (field-by-field serialization, no arena).
/// Kept for compatibility tests and as the bench's cold-load baseline;
/// load_snapshot still reads both.
void save_snapshot_v1(const FlatSnapshot& snap, const std::string& path);

/// Loads a snapshot saved by save_snapshot() (v2) or save_snapshot_v1().
/// Every header field, the checksum, and all structural invariants (section
/// bounds, index bounds, DFS-forward tree edges, strictly increasing BDD
/// variable order, program jump targets) are validated; a file failing any
/// check is rejected with apc::Error(kCorruptData) — never UB.  A v2 file is
/// mmap'd when `opts.mmap_load` allows (the arena then IS the file; warm
/// restore costs page faults, not a parse) and read into an owned arena
/// otherwise; a v1 file always takes the owned parse-and-assemble path.
/// The behavior table starts lazy (or disabled, per `opts`) and the header
/// cache starts cold.  Throws kIo when the file cannot be read.
std::shared_ptr<const FlatSnapshot> load_snapshot(const std::string& path,
                                                  const FlatSnapshot::Options& opts);
inline std::shared_ptr<const FlatSnapshot> load_snapshot(const std::string& path) {
  return load_snapshot(path, FlatSnapshot::Options{});
}

}  // namespace apc::engine
