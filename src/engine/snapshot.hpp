// FlatSnapshot — an immutable, manager-free freeze of the AP Tree and every
// node predicate's BDD, plus the stage-2 forwarding state, built for the
// concurrent query engine.
//
// Why it exists: ApTree::classify walks BDD nodes through the shared
// BddManager (handle deref -> manager -> node pool) on every predicate
// evaluation.  That path is single-threaded by construction — the manager's
// pool, unique table, and GC are shared mutable state.  A FlatSnapshot
// freezes everything stage 1 and the middlebox-free stage 2 need into
// contiguous arrays indexed by dense ids:
//
//   * every predicate BDD reachable from a tree node, deduplicated into one
//     FlatBddNode array ({var, lo, hi} triples; slots 0/1 are terminals),
//   * the tree itself as {bdd_root, left, right, atom} records,
//   * per-box port entries carrying copies of the R(p) atom bitsets,
//     peer wiring, and ACL bitsets.
//
// Classification is then a pure array walk: no BddManager, no ref-count
// traffic, no locks — safe from any number of threads.  The only mutable
// member is an optional per-atom stats block of relaxed atomic counters.
//
// Snapshots are published RCU-style by engine::QueryEngine: writers rebuild
// off to the side and atomically swap a shared_ptr<const FlatSnapshot>.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "bdd/bdd.hpp"
#include "classifier/classifier.hpp"
#include "util/bitset.hpp"
#include "util/visit_counters.hpp"

namespace apc::engine {

class FlatSnapshot {
 public:
  /// Freezes the classifier's current tree, predicates, and compiled
  /// network.  Pure read of the classifier — call from the writer side only
  /// (it must not race with classifier mutations).  Visit tracking follows
  /// the classifier's `track_visits` option.
  static std::shared_ptr<const FlatSnapshot> build(const ApClassifier& clf);

  // ---- Stage 1 (lock-free, const, thread-safe) ----
  AtomId classify(const PacketHeader& h) const;
  /// Same, also reporting the number of predicates evaluated (leaf depth).
  AtomId classify_counted(const PacketHeader& h, std::size_t& evals) const;

  // ---- Stage 2 (middlebox-free; mirrors compute_behavior exactly) ----
  Behavior behavior_of(AtomId atom, BoxId ingress) const;

  /// Two-stage query.  Requires a middlebox-free network: header-rewriting
  /// middleboxes need tree re-searches against live flow tables, which is
  /// the classifier's (writer-side) job.
  Behavior query(const PacketHeader& h, BoxId ingress) const;

  // ---- Introspection / stats ----
  bool has_middleboxes() const { return has_middleboxes_; }
  bool tracks_visits() const { return visits_.size() > 0; }
  /// Point-in-time copy of the per-atom visit counters (empty when visit
  /// tracking is off).  QueryEngine drains these into the classifier when
  /// the snapshot is retired.
  std::vector<std::uint64_t> visit_counts() const { return visits_.to_vector(); }

  std::size_t bdd_node_count() const { return bdd_nodes_.size(); }
  std::size_t tree_node_count() const { return tree_.size(); }
  std::size_t atom_capacity() const { return atom_capacity_; }
  std::size_t box_count() const { return boxes_.size(); }
  /// Approximate heap footprint of the frozen arrays.
  std::size_t memory_bytes() const;

 private:
  FlatSnapshot() = default;

  /// Tree node over the flat BDD array.  Leaves have left == kNil.
  struct FlatTreeNode {
    std::uint32_t bdd_root = 0;  ///< dense index into bdd_nodes_ (internal)
    std::int32_t left = -1;      ///< child when the predicate is true
    std::int32_t right = -1;     ///< child when it is false
    std::int32_t atom = -1;      ///< atom id at leaves
  };

  /// Copied per-port stage-2 entry.  Bitsets of deleted predicates are left
  /// empty, which reproduces pred_contains() == false for every atom.
  struct FlatPortEntry {
    std::uint32_t port = 0;
    std::int32_t peer_box = -1;  ///< -1: host port (delivery terminates)
    std::uint32_t peer_port = 0;
    FlatBitset fwd_atoms;        ///< copy of the forwarding R(p)
    bool has_out_acl = false;
    FlatBitset out_acl_atoms;
  };

  struct FlatInAcl {
    bool present = false;
    FlatBitset atoms;
  };

  std::vector<bdd::FlatBddNode> bdd_nodes_;
  std::vector<FlatTreeNode> tree_;
  std::int32_t tree_root_ = -1;

  struct FlatBox {
    std::vector<FlatPortEntry> ports;
    std::vector<FlatInAcl> in_acls;  ///< indexed by in-port
  };
  std::vector<FlatBox> boxes_;

  std::size_t atom_capacity_ = 0;
  bool has_middleboxes_ = false;
  mutable VisitCounters visits_;  ///< stats only; empty unless tracking
};

}  // namespace apc::engine
