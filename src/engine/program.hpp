// MatchProgram — a frozen snapshot compiled to a flat, branchless match
// program.
//
// FlatSnapshot's interpreted walk resolves one BDD *bit* per dependent load:
// tree node -> BDD root -> node -> node -> ... -> terminal -> next tree
// node.  An uncached uniform trace therefore pays a full load latency per
// header bit.  Click's Classifier shows the classic fix in software: compile
// the decision structure into a linear program of mask-and-compare steps,
// each testing a whole aligned word of the packet at once (SNIPPETS.md,
// classifier.hh: "four bytes of packet data are ANDed with a mask and
// compared against four bytes of classifier pattern").
//
// The compiler lowers the frozen tree + shared BDD array into contiguous
// 16-byte instructions
//
//     { mask32, value32, jump_on_match, jump_on_fail }
//
// where a jump packs { leaf?, word_offset, target } (see the bit layout at
// MatchInsn).  Runs of consecutive BDD bit-tests that (a) test bits of the
// same 32-bit header word and (b) fail to the same continuation are
// coalesced into a single instruction whose mask ORs the tested bits and
// whose value holds the required ones — an `equals(dst_ip, X)` predicate
// (32 BDD nodes) becomes ONE instruction.  Tree edges become jumps: a tree
// node's true branch continues at the next tree node's entry, its false
// branch at its right child's entry, and leaves are leaf-encoded jumps
// carrying the AtomId, so the whole two-level structure (tree over BDDs)
// flattens into one program with a single entry point.
//
// Execution is a pure data-dependent loop with no unpredictable branches:
//
//     while (!(pc & kLeafBit)) {
//       insn = prog[pc & kTargetMask]
//       w    = header.word32(insn.word)
//       pc   = (w & insn.mask) == insn.value ? insn.on_match : insn.on_fail
//     }
//     atom = pc & kTargetMask
//
// Two kernels run it (runtime CPUID dispatch, see run_batch):
//   * kernel_scalar.cpp — the portable interpreter, one header at a time;
//     also the differential oracle for the SIMD kernel.
//   * kernel_avx2.cpp — 8 headers per step: per-lane program counters,
//     masked vpgatherdd fetches of the instruction fields and of each
//     lane's header word, compare-under-mask, and a blend to advance the
//     PCs; finished lanes retire their atom and admit the next header.
//
// A MatchProgram is immutable after compile() and holds no pointers into
// the snapshot, so it is safe to share between snapshots (delta publishes
// carry it when the frozen tree+BDD arrays are unchanged) and to read from
// any number of threads.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ap/atoms.hpp"
#include "bdd/bdd.hpp"
#include "packet/header.hpp"

namespace apc::engine {

/// Whether a snapshot compiles a match program at freeze/publish time.
enum class ProgramMode : std::uint8_t {
  /// Compile when the program fits the auto budget (kAutoProgramBytes);
  /// fall back to the interpreted walk above it.
  kAuto,
  /// Compile unconditionally (hard cap: kMaxInstructions).
  kAlways,
  /// Never compile — interpreted walk only (the pre-program behavior).
  kNever,
};

/// Which executor a program run uses.  Values are stable: obs rows report
/// them (0 in those rows means "no program — interpreted walk").
enum class KernelKind : std::uint8_t { kScalar = 1, kAvx2 = 2 };

/// 8-byte AP-tree node in DFS preorder (frozen by FlatSnapshot::build_core,
/// consumed by MatchProgram::compile — defined here so both see it).  An
/// internal node's true-branch child is the next array element; `right`
/// holds the false-branch index.  Leaves set right = kLeaf and carry their
/// atom id in `bdd_root`.
struct FlatTreeNode {
  std::uint32_t bdd_root = 0;  ///< internal: dense BDD index; leaf: atom id
  std::int32_t right = -1;     ///< false-branch child, or kLeaf
};
inline constexpr std::int32_t kLeaf = -1;
static_assert(sizeof(FlatTreeNode) == 8, "tree nodes must stay 8 bytes");

/// One 16-byte match-program instruction: test a 32-bit header word under a
/// mask and jump.  Both jump fields use the same encoding
///
///     bit 31      kLeafBit — the jump retires with an AtomId
///     bits 30:27  this instruction's header word index (duplicated in both
///                 jumps so a kernel decodes the word from whichever dword
///                 it gathered)
///     bits 26:0   target pc (leaf clear) or atom id (leaf set)
///
/// so programs and atom universes are capped at 2^27 entries each.
struct MatchInsn {
  std::uint32_t mask = 0;      ///< header-word bits this step tests
  std::uint32_t value = 0;     ///< required values of the masked bits
  std::uint32_t on_match = 0;  ///< jump when (word & mask) == value
  std::uint32_t on_fail = 0;   ///< jump otherwise
};
static_assert(sizeof(MatchInsn) == 16, "instructions must stay 16 bytes");

class MatchProgram {
 public:
  static constexpr std::uint32_t kLeafBit = 0x80000000u;
  static constexpr std::uint32_t kTargetMask = 0x07FFFFFFu;
  static constexpr std::uint32_t kWordShift = 27;
  static constexpr std::uint32_t kWordFieldMask = 0xFu;  ///< 4 bits: 16 words
  static constexpr std::size_t kMaxInstructions = std::size_t{1} << 27;
  /// ProgramMode::kAuto compiles only while the instruction array stays
  /// under this footprint; larger programs fall back to the walk.
  static constexpr std::size_t kAutoProgramBytes = std::size_t{64} << 20;

  /// Lowers the frozen tree + shared BDD array into a program.  Instructions
  /// are laid out in DFS order from the entry (match path first), so the hot
  /// prefix of a walk is forward-contiguous.  Returns nullptr when the
  /// program would exceed `max_bytes` (0 = the kMaxInstructions hard cap
  /// only) — the caller keeps the interpreted walk.  Pure function of its
  /// arguments; the result holds no references to them.
  static std::shared_ptr<const MatchProgram> compile(
      const bdd::FlatBddNode* bdd_nodes, std::size_t bdd_count,
      const FlatTreeNode* tree, std::size_t tree_count, std::int32_t root,
      std::size_t max_bytes = 0);

  /// Wraps a program already materialized elsewhere — the snapshot arena's
  /// `program` section — without copying.  `keepalive` (typically the
  /// shared_ptr<const Arena>) pins the storage for the program's lifetime,
  /// so a mapped snapshot file stays mapped while any reader still runs its
  /// program.  The caller vouches for the code: snapshot_io validates every
  /// instruction's jump targets and word indices before adopting.
  static std::shared_ptr<const MatchProgram> adopt(
      const MatchInsn* code, std::size_t count, std::uint32_t entry,
      std::shared_ptr<const void> keepalive, double compile_seconds = 0.0);

  /// Classifies one header (scalar kernel).
  AtomId run(const PacketHeader& h) const;

  /// Classifies `n` headers into `out`; `which`, when non-null, selects the
  /// header/output indices to process (the cache-miss list, mirroring
  /// classify_lockstep).  Dispatches to the best kernel the CPU supports
  /// (AVX2 via CPUID when the kernel was built, scalar otherwise).
  void run_batch(const PacketHeader* hs, const std::size_t* which,
                 std::size_t n, AtomId* out) const {
    run_batch(hs, which, n, out, dispatch_kernel());
  }
  /// Same, forcing a kernel — the differential tests and the bench's
  /// scalar-vs-SIMD rows.  Requesting kAvx2 on a CPU without AVX2 (or in an
  /// AVX2-less build) runs the scalar kernel.
  void run_batch(const PacketHeader* hs, const std::size_t* which,
                 std::size_t n, AtomId* out, KernelKind kernel) const;

  /// True when the AVX2 kernel is compiled in AND the CPU reports AVX2.
  static bool avx2_available();
  /// The kernel run_batch will pick on this machine.
  KernelKind dispatch_kernel() const {
    return avx2_available() ? KernelKind::kAvx2 : KernelKind::kScalar;
  }

  std::size_t instruction_count() const { return code_count_; }
  std::size_t bytes() const { return code_count_ * sizeof(MatchInsn); }
  double compile_seconds() const { return compile_seconds_; }
  /// Entry jump value (leaf-encoded for a single-leaf tree).
  std::uint32_t entry() const { return entry_; }
  const MatchInsn* instructions() const { return code_; }
  /// True when the instructions live on this program's own heap (compiled);
  /// false when adopted from external storage (an arena owns the bytes, and
  /// memory accounting must not double-count them).
  bool owns_code() const { return keepalive_ == nullptr; }

 private:
  MatchProgram() = default;

  void run_batch_scalar(const PacketHeader* hs, const std::size_t* which,
                        std::size_t n, AtomId* out) const;
  /// Defined in kernel_avx2.cpp when APC_HAVE_AVX2_KERNEL is set; otherwise
  /// a scalar forwarder (program.cpp).
  void run_batch_avx2(const PacketHeader* hs, const std::size_t* which,
                      std::size_t n, AtomId* out) const;

  // Instruction storage is always read through (code_, code_count_): a
  // compiled program points it at its own insns_ vector; an adopted program
  // points into external storage pinned by keepalive_.
  std::vector<MatchInsn> insns_;
  const MatchInsn* code_ = nullptr;
  std::size_t code_count_ = 0;
  std::shared_ptr<const void> keepalive_;
  std::uint32_t entry_ = kLeafBit;  ///< empty program: atom 0 leaf
  double compile_seconds_ = 0.0;
};

}  // namespace apc::engine
