// Scalar match-program interpreter — the portable fallback kernel and the
// differential oracle the SIMD kernel is tested against (see program.hpp
// for the instruction set).
//
// The loop body is branchless by construction: the only data-dependent
// control flow is the loop condition itself (the leaf bit), and the
// two-way jump select compiles to a conditional move.  One header runs to
// completion at a time — lane parallelism is the AVX2 kernel's job; keeping
// this kernel sequential keeps it an unambiguous reference semantics.
#include "engine/program.hpp"

namespace apc::engine {

namespace {

inline AtomId run_one(const MatchInsn* prog, std::uint32_t entry,
                      const PacketHeader& h) {
  std::uint32_t pc = entry;
  while ((pc & MatchProgram::kLeafBit) == 0) {
    const MatchInsn& insn = prog[pc & MatchProgram::kTargetMask];
    const std::uint32_t w = h.word32((insn.on_match >> MatchProgram::kWordShift) &
                                     MatchProgram::kWordFieldMask);
    pc = (w & insn.mask) == insn.value ? insn.on_match : insn.on_fail;
  }
  return static_cast<AtomId>(pc & MatchProgram::kTargetMask);
}

}  // namespace

AtomId MatchProgram::run(const PacketHeader& h) const {
  return run_one(code_, entry_, h);
}

void MatchProgram::run_batch_scalar(const PacketHeader* hs,
                                    const std::size_t* which, std::size_t n,
                                    AtomId* out) const {
  const MatchInsn* prog = code_;
  if (which == nullptr) {
    for (std::size_t i = 0; i < n; ++i) out[i] = run_one(prog, entry_, hs[i]);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t slot = which[i];
    out[slot] = run_one(prog, entry_, hs[slot]);
  }
}

}  // namespace apc::engine
