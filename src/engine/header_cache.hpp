// HeaderAtomCache — a fixed-capacity, sharded, lock-free header -> atom
// cache consulted in front of the AP Tree walk.
//
// The paper's packet-distribution experiments (SS VII, Fig. 15) show real
// traffic is heavily skewed: a few packet classes dominate.  A stage-1
// classification is a pure function of the header bits the tree's predicate
// BDDs test, so hot flows can skip the tree entirely: canonicalize the
// header to those bits, hash, and probe one direct-mapped slot.
//
// Concurrency design (TSan-clean, no locks):
//  * Slots are seqlock-tagged: `seq` is 0 while empty, odd while a writer
//    owns the slot, and advances by 2 per publish.  Readers validate `seq`
//    before and after reading; writers claim the slot with a CAS and never
//    block (a lost claim just skips the insert — the cache is lossy by
//    design).
//  * Key and value words are relaxed atomics, so racy read/write pairs are
//    data-race-free by construction; the seq protocol (acquire loads, a
//    release publish, and an acquire fence before revalidation) makes torn
//    key/value observations detectable and turns them into misses.
//  * The cache is owned by one immutable FlatSnapshot and dies with it, so
//    publication of a new snapshot invalidates the whole cache wholesale —
//    a stale-snapshot hit is structurally impossible.
//
// lookup()/insert() keep no statistics themselves (a shared per-packet
// counter would bounce a cache line across every query thread); callers
// count hits/misses at batch granularity and fold them into the owner's
// counters.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "ap/atoms.hpp"
#include "packet/header.hpp"

namespace apc::engine {

class HeaderAtomCache {
 public:
  /// Bits of each header word that any tree predicate actually tests;
  /// headers equal under this mask are in the same atom by construction.
  using Mask = std::array<std::uint64_t, PacketHeader::kWords>;
  /// A canonicalized (masked) header key as stored in a slot.
  using KeyWords = std::array<std::uint64_t, PacketHeader::kWords>;

  /// Total-slot floor/ceiling of the sizing rule below.  kMaxSlots bounds
  /// the slot array at 2^20 entries (64 MiB of slots) so absurd capacity
  /// requests (including values above 2^63, which used to spin the
  /// power-of-two rounding forever) degrade to a deterministic clamp
  /// instead of an overflow or an unbounded allocation.
  static constexpr std::size_t kMinSlots = 64;
  static constexpr std::size_t kMaxSlots = std::size_t{1} << 20;

  /// Sizing invariant (deterministic for every input):
  ///   slots  = pow2_round_up(capacity) clamped to [kMinSlots, kMaxSlots];
  ///   shards = pow2_round_up(shards)   clamped to [1, slots / kMinSlots]
  ///            (0 = auto: one shard per 256 slots, at most 64).
  /// Every shard therefore keeps >= kMinSlots slots, both counts are powers
  /// of two, and an explicit `shards` request above the ceiling is clamped
  /// — check shard_count() when the exact value matters.  The shard is
  /// chosen by the high hash bits, the slot by the low bits.
  HeaderAtomCache(std::size_t capacity, std::size_t shards, const Mask& tested_bits);

  HeaderAtomCache(const HeaderAtomCache&) = delete;
  HeaderAtomCache& operator=(const HeaderAtomCache&) = delete;

  /// Probes the slot for `h`.  True (and fills `atom`) only when the slot
  /// holds the canonicalized key of `h` and was stably published.
  bool lookup(const PacketHeader& h, AtomId& atom) const;

  /// Publishes (h -> atom), overwriting whatever the slot held.  Skips the
  /// insert when another writer holds the slot.  Safe from any thread.
  void insert(const PacketHeader& h, AtomId atom) const;

  std::size_t capacity() const { return shard_count_ * slots_per_shard_; }
  std::size_t shard_count() const { return shard_count_; }
  std::size_t memory_bytes() const;

  /// The canonicalization mask this cache was built with.
  const Mask& mask() const { return mask_; }

  /// Visits every stably published (key, atom) entry.  Each slot is read
  /// under the same seqlock validation as lookup(): entries mid-write or
  /// torn by a concurrent writer are skipped, never observed torn.  Used at
  /// publish time to carry a retiring snapshot's hot entries into its
  /// successor.
  void for_each_valid(
      const std::function<void(const KeyWords&, AtomId)>& fn) const;

  /// Publishes an already-canonicalized key (the caller guarantees
  /// `key[i] == key[i] & mask()[i]`).  Same lossy slot protocol as insert().
  void insert_canonical(const KeyWords& key, AtomId atom) const;

 private:
  /// One direct-mapped entry.  48 bytes of state, padded to one cache line
  /// so concurrent writers to neighboring slots never false-share.
  struct alignas(64) Slot {
    std::atomic<std::uint32_t> seq{0};   ///< 0 empty; odd mid-write; +2/publish
    std::atomic<std::uint32_t> atom{0};
    std::array<std::atomic<std::uint64_t>, PacketHeader::kWords> key{};
  };

  Slot& slot_for(std::uint64_t hash) const;
  static std::uint64_t hash_words(const KeyWords& key);
  std::uint64_t hash_canonical(const PacketHeader& h,
                               std::array<std::uint64_t, PacketHeader::kWords>& key) const;
  /// Claims the slot for `hash` and publishes (key -> atom); skips when
  /// another writer owns it.  Shared by insert()/insert_canonical().
  void publish(const KeyWords& key, std::uint64_t hash, AtomId atom) const;

  Mask mask_{};
  std::size_t shard_count_ = 0;
  std::size_t slots_per_shard_ = 0;
  std::vector<std::unique_ptr<Slot[]>> shards_;
};

}  // namespace apc::engine
