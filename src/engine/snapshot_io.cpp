// Durable FlatSnapshot persistence — see snapshot.hpp for the contract and
// docs/architecture.md ("Snapshot memory layout & warm restore") for the
// formats.
//
// v2 (written by save_snapshot):
//
//   +------------------------------------------------------------------+
//   | magic "APCSNAP2" (8B) | version u32 | endian u32                  |
//   | arena_len u64 | crc32c(arena) u32 (masked) | zero pad to 4096     |
//   +------------------------------------------------------------------+
//   | arena bytes, verbatim (ArenaHeader + sections; page-aligned here) |
//   +------------------------------------------------------------------+
//
//   The arena IS the in-memory format (engine/arena.hpp), so a save is one
//   contiguous image and a load can mmap the file: the 4 KiB header pad
//   page-aligns the arena in the file, CRC + structural validation run over
//   the mapping, and the snapshot then reads straight out of the page
//   cache — warm restore costs page faults, not a parse.  When mmap is
//   unavailable (APC_FORCE_NO_MMAP) or disabled (Options::mmap_load) the
//   same bytes are read into an owned aligned buffer instead.
//
// v1 (written by save_snapshot_v1, still loaded transparently):
//
//   +-----------------------------------------------------------+
//   | magic "APCSNAP1" (8B) | version u32 | endian u32           |
//   | payload_len u64 | crc32c(payload) u32 (masked)             |
//   +-----------------------------------------------------------+
//   | payload: flags, atom capacity, BDD node array, tree array, |
//   |          per-box stage-2 port entries and ACL bitsets      |
//   +-----------------------------------------------------------+
//
// Saves are atomic (tmp + fsync + rename + directory fsync): a reader never
// observes a half-written snapshot, and a crash mid-save leaves the previous
// file intact.  The directory fsync is what makes the RENAME durable — on a
// power cut before the directory entry reaches disk, an fsync'd-but-not-
// linked file silently vanishes — so it propagates real errors and carries
// its own fault-injection site (`snapshot.save.dirsync`).  Loads trust
// nothing: header fields, the checksum, and every structural invariant are
// validated before the arrays are adopted, so a corrupt or adversarial file
// yields apc::Error(kCorruptData), never UB.
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "engine/snapshot.hpp"
#include "util/crc32c.hpp"
#include "util/fault_injection.hpp"

namespace apc::engine {

namespace {

constexpr char kMagicV1[8] = {'A', 'P', 'C', 'S', 'N', 'A', 'P', '1'};
constexpr char kMagicV2[8] = {'A', 'P', 'C', 'S', 'N', 'A', 'P', '2'};
constexpr std::uint32_t kVersion1 = 1;
constexpr std::uint32_t kVersion2 = 2;
constexpr std::uint32_t kEndianSentinel = 0x01020304u;
constexpr std::size_t kV1HeaderBytes = sizeof(kMagicV1) + 4 + 4 + 8 + 4;
/// v2 file header size: one page, so the arena starts page-aligned in the
/// file (an mmap offset must be page-aligned, and the arena's 64-byte
/// section alignment then holds in memory too).
constexpr std::size_t kV2HeaderBytes = 4096;

static_assert(sizeof(bdd::FlatBddNode) == 12, "FlatBddNode layout is serialized raw");

[[noreturn]] void fail_io(const std::string& what, int err) {
  throw Error(ErrorCode::kIo,
              what + ": " + std::strerror(err) + " (errno " + std::to_string(err) + ")");
}

[[noreturn]] void fail_corrupt(const std::string& path, const char* what) {
  throw Error(ErrorCode::kCorruptData,
              "snapshot " + path + ": " + what);
}

// ---- serialization primitives (v1 + the v2 file header) ----

void put_bytes(std::string& out, const void* p, std::size_t n) {
  if (n != 0) out.append(static_cast<const char*>(p), n);
}
void put_u8(std::string& out, std::uint8_t v) { put_bytes(out, &v, 1); }
void put_u32(std::string& out, std::uint32_t v) { put_bytes(out, &v, 4); }
void put_i32(std::string& out, std::int32_t v) { put_bytes(out, &v, 4); }
void put_u64(std::string& out, std::uint64_t v) { put_bytes(out, &v, 8); }

void put_bits(std::string& out, const BitsRef& r, const std::uint64_t* pool) {
  put_u64(out, r.nbits);
  put_u64(out, r.word_count());
  put_bytes(out, pool + r.word_off, r.word_count() * sizeof(std::uint64_t));
}

/// Bounds-checked cursor over the untrusted payload.
struct Reader {
  const char* p;
  std::size_t left;
  const std::string& path;

  void take(void* out, std::size_t n) {
    if (left < n) fail_corrupt(path, "truncated payload");
    if (n != 0) std::memcpy(out, p, n);  // empty arrays have a null data()
    p += n;
    left -= n;
  }
  std::uint8_t u8() { std::uint8_t v; take(&v, 1); return v; }
  std::uint32_t u32() { std::uint32_t v; take(&v, 4); return v; }
  std::int32_t i32() { std::int32_t v; take(&v, 4); return v; }
  std::uint64_t u64() { std::uint64_t v; take(&v, 8); return v; }

  /// Reads a length-prefixed array of `elem_size`-byte elements, rejecting
  /// counts that do not fit the remaining payload *before* allocating.
  template <typename T>
  std::vector<T> array(std::size_t elem_size) {
    const std::uint64_t n = u64();
    if (n > left / elem_size) fail_corrupt(path, "array length exceeds payload");
    std::vector<T> out(static_cast<std::size_t>(n));
    take(out.data(), static_cast<std::size_t>(n) * elem_size);
    return out;
  }

  FlatBitset bitset() {
    const std::uint64_t nbits = u64();
    const std::uint64_t nwords = u64();
    if (nwords > left / sizeof(std::uint64_t))
      fail_corrupt(path, "bitset length exceeds payload");
    std::vector<std::uint64_t> words(static_cast<std::size_t>(nwords));
    take(words.data(), words.size() * sizeof(std::uint64_t));
    FlatBitset out;
    if (!FlatBitset::from_words(static_cast<std::size_t>(nbits), std::move(words), &out))
      fail_corrupt(path, "bitset word count / tail bits inconsistent");
    return out;
  }
};

// ---- file I/O helpers ----

void write_all_fd(int fd, const char* p, std::size_t n, const std::string& what) {
  std::size_t cap = n;
  if (const int err = util::fault_errno("snapshot.save.write", &cap)) {
    errno = err;
    fail_io(what, err);
  }
  const bool short_write = cap < n;
  std::size_t target = short_write ? cap : n;
  while (target > 0) {
    const ssize_t w = ::write(fd, p, target);
    if (w < 0) {
      if (errno == EINTR) continue;
      fail_io(what, errno);
    }
    p += w;
    target -= static_cast<std::size_t>(w);
  }
  if (short_write) fail_io(what + " (short write)", 5 /* EIO */);
}

void read_exact_fd(int fd, std::size_t offset, void* out, std::size_t n,
                   const std::string& path) {
  char* p = static_cast<char*>(out);
  while (n > 0) {
    const ssize_t r = ::pread(fd, p, n, static_cast<off_t>(offset));
    if (r < 0) {
      if (errno == EINTR) continue;
      fail_io("snapshot: read " + path, errno);
    }
    if (r == 0) fail_corrupt(path, "file shorter than payload");
    p += r;
    offset += static_cast<std::size_t>(r);
    n -= static_cast<std::size_t>(r);
  }
}

/// Fsyncs the directory containing `path`, making a just-renamed file's
/// directory entry durable.  A filesystem that refuses to open or fsync a
/// directory (EINVAL/EACCES on some network mounts) is tolerated — there is
/// nothing more a process can do there — but a real write-back failure
/// (EIO) propagates, and the fault site lets the chaos tests prove callers
/// surface it.
void fsync_parent_dir(const std::string& path, const char* site) {
  if (const int err = util::fault_errno(site))
    fail_io(std::string("snapshot: fsync parent dir of ") + path, err);
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int dfd = ::open(dir.empty() ? "/" : dir.c_str(), O_RDONLY | O_CLOEXEC);
  if (dfd < 0) return;  // not all filesystems allow opening a dir for fsync
  if (::fsync(dfd) != 0 && errno != EINVAL && errno != EROFS) {
    const int err = errno;
    ::close(dfd);
    fail_io("snapshot: fsync dir " + dir, err);
  }
  ::close(dfd);
}

/// Atomically replaces `path` with the concatenation of `parts`:
/// tmp + fsync + rename + directory fsync.
void atomic_write_file(const std::string& path,
                       std::initializer_list<std::pair<const char*, std::size_t>> parts) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) fail_io("snapshot: open " + tmp, errno);
  try {
    for (const auto& [p, n] : parts)
      write_all_fd(fd, p, n, "snapshot: write " + tmp);
    if (const int err = util::fault_errno("snapshot.save.fsync"))
      fail_io("snapshot: fsync " + tmp, err);
    if (::fsync(fd) != 0) fail_io("snapshot: fsync " + tmp, errno);
  } catch (...) {
    ::close(fd);
    ::unlink(tmp.c_str());  // never leave a torn tmp behind
    throw;
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    fail_io("snapshot: close " + tmp, errno);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    fail_io("snapshot: rename " + tmp + " -> " + path, err);
  }
  fsync_parent_dir(path, "snapshot.save.dirsync");
}

// ---- structural validation (shared by the v1 parse and the v2 arena) ----

/// Validates the frozen core arrays so adversarial indices can never walk
/// out of bounds or loop forever.  `nwords` is the bitset word-pool size
/// every BitsRef must stay inside.
void validate_frozen(const bdd::FlatBddNode* bdd, std::size_t nb,
                     const FlatTreeNode* tree, std::size_t nt, std::int32_t root,
                     std::size_t atom_capacity, const ArenaBox* boxes,
                     std::size_t nboxes, const ArenaPortEntry* ports,
                     std::size_t nports, const ArenaInAcl* acls,
                     std::size_t nacls, std::size_t nwords,
                     const std::string& path) {
  if (nb < 2) fail_corrupt(path, "missing BDD terminals");
  for (std::size_t i = 2; i < nb; ++i) {
    const bdd::FlatBddNode& n = bdd[i];
    if (n.lo >= nb || n.hi >= nb) fail_corrupt(path, "BDD child out of range");
    if (n.var >= PacketHeader::kMaxBits) fail_corrupt(path, "BDD variable out of range");
    // ROBDD invariant: variables strictly increase toward the terminals —
    // also the termination guarantee for the eval walk.
    if (n.lo > bdd::kTrue && bdd[n.lo].var <= n.var)
      fail_corrupt(path, "BDD variable order violated");
    if (n.hi > bdd::kTrue && bdd[n.hi].var <= n.var)
      fail_corrupt(path, "BDD variable order violated");
  }
  if (nt == 0 || root != 0) fail_corrupt(path, "bad tree root");
  for (std::size_t i = 0; i < nt; ++i) {
    const FlatTreeNode& t = tree[i];
    if (t.right == kLeaf) {
      if (t.bdd_root >= atom_capacity)
        fail_corrupt(path, "leaf atom out of range");
    } else {
      if (t.bdd_root >= nb) fail_corrupt(path, "tree predicate out of range");
      // DFS preorder: both children sit strictly after the node (true child
      // is i+1), so every walk makes forward progress and terminates.
      if (t.right <= static_cast<std::int32_t>(i) ||
          t.right >= static_cast<std::int32_t>(nt))
        fail_corrupt(path, "tree edge not DFS-forward");
    }
  }
  const auto bits_ok = [&](const BitsRef& r) {
    if (r.nbits == 0) return true;
    const std::uint64_t wc = r.word_count();
    return r.word_off <= nwords && wc <= nwords - r.word_off;
  };
  for (std::size_t b = 0; b < nboxes; ++b) {
    const ArenaBox& fb = boxes[b];
    if (std::uint64_t{fb.port_begin} + fb.port_count > nports)
      fail_corrupt(path, "box port range out of bounds");
    if (std::uint64_t{fb.acl_begin} + fb.acl_count > nacls)
      fail_corrupt(path, "box ACL range out of bounds");
  }
  for (std::size_t i = 0; i < nports; ++i) {
    const ArenaPortEntry& e = ports[i];
    if (e.peer_box >= static_cast<std::int32_t>(nboxes) || e.peer_box < -1)
      fail_corrupt(path, "peer box out of range");
    if (!bits_ok(e.fwd_atoms) || !bits_ok(e.out_acl_atoms))
      fail_corrupt(path, "port bitset out of bounds");
  }
  for (std::size_t i = 0; i < nacls; ++i)
    if (!bits_ok(acls[i].atoms)) fail_corrupt(path, "ACL bitset out of bounds");
}

/// Validates a whole arena: header sanity, section bounds, the shared
/// structural checks, and — v2-only — the match program's jump targets and
/// word indices (the kernels index headers and code with NO runtime checks,
/// so every encoded target must be proven in range here).
void validate_arena(const Arena& a, const std::string& path) {
  if (a.size() < sizeof(ArenaHeader)) fail_corrupt(path, "arena shorter than header");
  const ArenaHeader& h = a.header();
  if (std::memcmp(h.magic, ArenaHeader::kMagic, sizeof(h.magic)) != 0)
    fail_corrupt(path, "bad arena magic");
  if (h.layout_version != ArenaHeader::kLayoutVersion)
    fail_corrupt(path, "unsupported arena layout version");
  if (h.arena_bytes != a.size()) fail_corrupt(path, "arena length mismatch");
  constexpr std::uint32_t kKnownFlags = ArenaHeader::kHasMiddleboxes |
                                        ArenaHeader::kTracksVisits |
                                        ArenaHeader::kHasProgram;
  if ((h.flags & ~kKnownFlags) != 0) fail_corrupt(path, "unknown arena flags");
  if (!a.ref_ok<bdd::FlatBddNode>(h.bdd_nodes) || !a.ref_ok<FlatTreeNode>(h.tree) ||
      !a.ref_ok<ArenaBox>(h.boxes) || !a.ref_ok<ArenaPortEntry>(h.ports) ||
      !a.ref_ok<ArenaInAcl>(h.in_acls) || !a.ref_ok<std::uint64_t>(h.words) ||
      !a.ref_ok<MatchInsn>(h.program))
    fail_corrupt(path, "arena section out of bounds");

  validate_frozen(a.ptr<bdd::FlatBddNode>(h.bdd_nodes), h.bdd_nodes.count,
                  a.ptr<FlatTreeNode>(h.tree), h.tree.count, h.tree_root,
                  h.atom_capacity, a.ptr<ArenaBox>(h.boxes), h.boxes.count,
                  a.ptr<ArenaPortEntry>(h.ports), h.ports.count,
                  a.ptr<ArenaInAcl>(h.in_acls), h.in_acls.count, h.words.count,
                  path);

  if ((h.flags & ArenaHeader::kHasProgram) != 0) {
    const MatchInsn* code = a.ptr<MatchInsn>(h.program);
    const std::uint64_t n = h.program.count;
    const auto jump_ok = [&](std::uint32_t j) {
      const std::uint32_t word =
          (j >> MatchProgram::kWordShift) & MatchProgram::kWordFieldMask;
      if (word >= PacketHeader::kWords32) return false;
      const std::uint32_t target = j & MatchProgram::kTargetMask;
      return (j & MatchProgram::kLeafBit) != 0 ? target < h.atom_capacity
                                               : target < n;
    };
    // The entry carries no word index when leaf-encoded; a non-leaf entry
    // must land inside the code.
    if ((h.program_entry & MatchProgram::kLeafBit) != 0) {
      if ((h.program_entry & MatchProgram::kTargetMask) >= h.atom_capacity)
        fail_corrupt(path, "program entry atom out of range");
    } else if ((h.program_entry & MatchProgram::kTargetMask) >= n) {
      fail_corrupt(path, "program entry out of range");
    }
    for (std::uint64_t i = 0; i < n; ++i) {
      if (!jump_ok(code[i].on_match) || !jump_ok(code[i].on_fail))
        fail_corrupt(path, "program jump out of range");
    }
  } else if (h.program.count != 0) {
    fail_corrupt(path, "program section without program flag");
  }
}

}  // namespace

void save_snapshot(const FlatSnapshot& snap, const std::string& path) {
  require(!path.empty(), ErrorCode::kInvalidArgument, "save_snapshot: empty path");
  const Arena& arena = *snap.arena_;

  std::string head;
  head.reserve(kV2HeaderBytes);
  put_bytes(head, kMagicV2, sizeof(kMagicV2));
  put_u32(head, kVersion2);
  put_u32(head, kEndianSentinel);
  put_u64(head, arena.size());
  put_u32(head, util::crc32c_mask(util::crc32c(
                    reinterpret_cast<const char*>(arena.base()), arena.size())));
  head.resize(kV2HeaderBytes, '\0');  // pad: the arena starts page-aligned

  atomic_write_file(
      path, {{head.data(), head.size()},
             {reinterpret_cast<const char*>(arena.base()), arena.size()}});
}

void save_snapshot_v1(const FlatSnapshot& snap, const std::string& path) {
  require(!path.empty(), ErrorCode::kInvalidArgument, "save_snapshot_v1: empty path");

  // ---- serialize the frozen core, field by field ----
  std::string payload;
  put_u8(payload, snap.has_middleboxes_ ? 1 : 0);
  put_u8(payload, snap.tracks_visits() ? 1 : 0);
  put_u64(payload, snap.atom_capacity_);

  put_u64(payload, snap.bdd_count_);
  put_bytes(payload, snap.bdd_nodes_, snap.bdd_count_ * sizeof(bdd::FlatBddNode));

  put_u64(payload, snap.tree_count_);
  put_bytes(payload, snap.tree_, snap.tree_count_ * sizeof(FlatTreeNode));
  put_i32(payload, snap.tree_root_);

  put_u64(payload, snap.box_count_);
  for (std::size_t b = 0; b < snap.box_count_; ++b) {
    const ArenaBox& fb = snap.boxes_[b];
    put_u64(payload, fb.port_count);
    for (std::uint32_t i = 0; i < fb.port_count; ++i) {
      const ArenaPortEntry& e = snap.ports_[fb.port_begin + i];
      put_u32(payload, e.port);
      put_i32(payload, e.peer_box);
      put_u32(payload, e.peer_port);
      put_u8(payload, e.has_out_acl != 0 ? 1 : 0);
      put_bits(payload, e.fwd_atoms, snap.words_);
      put_bits(payload, e.out_acl_atoms, snap.words_);
    }
    put_u64(payload, fb.acl_count);
    for (std::uint32_t i = 0; i < fb.acl_count; ++i) {
      const ArenaInAcl& a = snap.in_acls_[fb.acl_begin + i];
      put_u8(payload, a.present != 0 ? 1 : 0);
      put_bits(payload, a.atoms, snap.words_);
    }
  }

  std::string file;
  file.reserve(kV1HeaderBytes + payload.size());
  put_bytes(file, kMagicV1, sizeof(kMagicV1));
  put_u32(file, kVersion1);
  put_u32(file, kEndianSentinel);
  put_u64(file, payload.size());
  put_u32(file, util::crc32c_mask(util::crc32c(payload.data(), payload.size())));
  file += payload;

  atomic_write_file(path, {{file.data(), file.size()}});
}

std::shared_ptr<const FlatSnapshot> load_snapshot(const std::string& path,
                                                  const FlatSnapshot::Options& opts) {
  if (const int err = util::fault_errno("snapshot.load.read"))
    fail_io("snapshot: read " + path, err);
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) fail_io("snapshot: open " + path, errno);

  struct FdCloser {
    int fd;
    ~FdCloser() { ::close(fd); }
  } closer{fd};

  struct ::stat st{};
  if (::fstat(fd, &st) != 0) fail_io("snapshot: stat " + path, errno);
  const std::size_t file_size = static_cast<std::size_t>(st.st_size);

  char magic[8] = {};
  if (file_size < sizeof(magic)) fail_corrupt(path, "file shorter than header");
  read_exact_fd(fd, 0, magic, sizeof(magic), path);

  // ---------------- v2: arena image, mmap or owned read ----------------
  if (std::memcmp(magic, kMagicV2, sizeof(magic)) == 0) {
    if (file_size < kV2HeaderBytes) fail_corrupt(path, "file shorter than header");
    std::string head(kV2HeaderBytes, '\0');
    read_exact_fd(fd, 0, head.data(), head.size(), path);
    Reader hdr{head.data() + sizeof(magic), head.size() - sizeof(magic), path};
    if (hdr.u32() != kVersion2) fail_corrupt(path, "unsupported version");
    if (hdr.u32() != kEndianSentinel) fail_corrupt(path, "endianness mismatch");
    const std::uint64_t arena_len = hdr.u64();
    const std::uint32_t stored_crc = util::crc32c_unmask(hdr.u32());
    // Everything between the fixed fields and the page boundary must be
    // zero: the pad is not CRC-covered, so any flipped bit there is caught
    // here instead of silently accepted.
    for (std::size_t i = 0; i < hdr.left; ++i)
      if (hdr.p[i] != '\0') fail_corrupt(path, "nonzero header padding");
    if (arena_len < sizeof(ArenaHeader) || arena_len % Arena::kAlign != 0)
      fail_corrupt(path, "bad arena length");
    if (file_size != kV2HeaderBytes + arena_len)
      fail_corrupt(path, "file length does not match arena length");

    std::shared_ptr<const Arena> arena;
    if (opts.mmap_load && Arena::mmap_supported()) {
      try {
        arena = Arena::map_file(fd, kV2HeaderBytes, arena_len);
      } catch (const Error&) {
        arena = nullptr;  // e.g. a filesystem that refuses mmap: owned read
      }
    }
    if (arena != nullptr) {
      // Ask for readahead before the CRC touches every page in order, and
      // (kHot) keep the per-query-hot sections warm explicitly.
      switch (opts.prefault) {
        case PrefaultPolicy::kNone:
          break;
        case PrefaultPolicy::kAll:
          arena->prefault_all();
          break;
        case PrefaultPolicy::kHot:
          if (arena->size() >= sizeof(ArenaHeader)) {
            const ArenaHeader& h = arena->header();
            arena->prefault(h.tree, sizeof(FlatTreeNode));
            arena->prefault(h.program, sizeof(MatchInsn));
          }
          break;
      }
    } else {
      // Owned fallback: same bytes, same validation, heap storage.
      const std::size_t alloc = (arena_len + Arena::kAlign - 1) &
                                ~(std::size_t{Arena::kAlign} - 1);
      void* buf = std::aligned_alloc(Arena::kAlign, alloc);
      if (buf == nullptr)
        throw Error(ErrorCode::kResourceExhausted, "snapshot: arena allocation");
      try {
        read_exact_fd(fd, kV2HeaderBytes, buf, arena_len, path);
      } catch (...) {
        std::free(buf);
        throw;
      }
      arena = Arena::adopt_owned(buf, arena_len);
    }

    if (util::crc32c(reinterpret_cast<const char*>(arena->base()),
                     arena->size()) != stored_crc)
      fail_corrupt(path, "checksum mismatch");
    validate_arena(*arena, path);
    return FlatSnapshot::from_arena(std::move(arena), opts);
  }

  // ---------------- v1: parse into CoreData, assemble an arena ----------
  if (std::memcmp(magic, kMagicV1, sizeof(magic)) != 0)
    fail_corrupt(path, "bad magic");
  if (file_size < kV1HeaderBytes) fail_corrupt(path, "file shorter than header");
  std::string file(file_size, '\0');
  read_exact_fd(fd, 0, file.data(), file.size(), path);

  Reader hdr{file.data() + sizeof(magic), file.size() - sizeof(magic), path};
  const std::uint32_t version = hdr.u32();
  if (version != kVersion1) fail_corrupt(path, "unsupported version");
  if (hdr.u32() != kEndianSentinel) fail_corrupt(path, "endianness mismatch");
  const std::uint64_t payload_len = hdr.u64();
  const std::uint32_t stored_crc = util::crc32c_unmask(hdr.u32());
  if (payload_len != hdr.left) fail_corrupt(path, "payload length mismatch");
  if (util::crc32c(hdr.p, hdr.left) != stored_crc) fail_corrupt(path, "checksum mismatch");

  Reader r{hdr.p, hdr.left, path};
  FlatSnapshot::CoreData core;
  core.has_middleboxes = r.u8() != 0;
  core.tracks_visits = r.u8() != 0;
  core.atom_capacity = static_cast<std::size_t>(r.u64());

  core.bdd_nodes = r.array<bdd::FlatBddNode>(sizeof(bdd::FlatBddNode));
  core.tree = r.array<FlatTreeNode>(sizeof(FlatTreeNode));
  core.tree_root = r.i32();

  const std::uint64_t box_count = r.u64();
  if (box_count > r.left) fail_corrupt(path, "box count exceeds payload");
  core.boxes.resize(static_cast<std::size_t>(box_count));
  for (ArenaBox& fb : core.boxes) {
    const std::uint64_t ports = r.u64();
    if (ports > r.left) fail_corrupt(path, "port count exceeds payload");
    fb.port_begin = static_cast<std::uint32_t>(core.ports.size());
    fb.port_count = static_cast<std::uint32_t>(ports);
    for (std::uint64_t i = 0; i < ports; ++i) {
      ArenaPortEntry e;
      e.port = r.u32();
      e.peer_box = r.i32();
      e.peer_port = r.u32();
      e.has_out_acl = r.u8() != 0 ? 1 : 0;
      e.fwd_atoms = core.intern_bits(r.bitset());
      e.out_acl_atoms = core.intern_bits(r.bitset());
      core.ports.push_back(e);
    }
    const std::uint64_t acls = r.u64();
    if (acls > r.left) fail_corrupt(path, "ACL count exceeds payload");
    fb.acl_begin = static_cast<std::uint32_t>(core.in_acls.size());
    fb.acl_count = static_cast<std::uint32_t>(acls);
    for (std::uint64_t i = 0; i < acls; ++i) {
      ArenaInAcl a;
      a.present = r.u8() != 0 ? 1 : 0;
      a.atoms = core.intern_bits(r.bitset());
      core.in_acls.push_back(a);
    }
  }
  if (r.left != 0) fail_corrupt(path, "trailing bytes after payload");

  // Structural validation BEFORE from_core: the program compiler and the
  // walks index these arrays unchecked.
  validate_frozen(core.bdd_nodes.data(), core.bdd_nodes.size(), core.tree.data(),
                  core.tree.size(), core.tree_root, core.atom_capacity,
                  core.boxes.data(), core.boxes.size(), core.ports.data(),
                  core.ports.size(), core.in_acls.data(), core.in_acls.size(),
                  core.words.size(), path);

  return FlatSnapshot::from_core(std::move(core), opts, nullptr);
}

}  // namespace apc::engine
