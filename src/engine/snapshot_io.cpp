// Durable FlatSnapshot persistence — see snapshot.hpp for the contract and
// docs/architecture.md ("Fault tolerance & durability") for the file layout:
//
//   +-----------------------------------------------------------+
//   | magic "APCSNAP1" (8B) | version u32 | endian u32           |
//   | payload_len u64 | crc32c(payload) u32 (masked)             |
//   +-----------------------------------------------------------+
//   | payload: flags, atom capacity, BDD node array, tree array, |
//   |          per-box stage-2 port entries and ACL bitsets      |
//   +-----------------------------------------------------------+
//
// Saves are atomic (tmp + fsync + rename + directory fsync): a reader never
// observes a half-written snapshot, and a crash mid-save leaves the previous
// file intact.  Loads trust nothing: header fields, the checksum, and every
// structural invariant are validated before the arrays are adopted, so a
// corrupt or adversarial file yields apc::Error(kCorruptData), never UB.
#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

#include "engine/snapshot.hpp"
#include "util/crc32c.hpp"
#include "util/fault_injection.hpp"

namespace apc::engine {

namespace {

constexpr char kMagic[8] = {'A', 'P', 'C', 'S', 'N', 'A', 'P', '1'};
constexpr std::uint32_t kVersion = 1;
constexpr std::uint32_t kEndianSentinel = 0x01020304u;
constexpr std::size_t kFileHeaderBytes = sizeof(kMagic) + 4 + 4 + 8 + 4;

static_assert(sizeof(bdd::FlatBddNode) == 12, "FlatBddNode layout is serialized raw");

[[noreturn]] void fail_io(const std::string& what, int err) {
  throw Error(ErrorCode::kIo,
              what + ": " + std::strerror(err) + " (errno " + std::to_string(err) + ")");
}

[[noreturn]] void fail_corrupt(const std::string& path, const char* what) {
  throw Error(ErrorCode::kCorruptData,
              "snapshot " + path + ": " + what);
}

// ---- serialization primitives ----

void put_bytes(std::string& out, const void* p, std::size_t n) {
  if (n != 0) out.append(static_cast<const char*>(p), n);
}
void put_u8(std::string& out, std::uint8_t v) { put_bytes(out, &v, 1); }
void put_u32(std::string& out, std::uint32_t v) { put_bytes(out, &v, 4); }
void put_i32(std::string& out, std::int32_t v) { put_bytes(out, &v, 4); }
void put_u64(std::string& out, std::uint64_t v) { put_bytes(out, &v, 8); }

void put_bitset(std::string& out, const FlatBitset& b) {
  put_u64(out, b.size());
  put_u64(out, b.words().size());
  put_bytes(out, b.words().data(), b.words().size() * sizeof(std::uint64_t));
}

/// Bounds-checked cursor over the untrusted payload.
struct Reader {
  const char* p;
  std::size_t left;
  const std::string& path;

  void take(void* out, std::size_t n) {
    if (left < n) fail_corrupt(path, "truncated payload");
    if (n != 0) std::memcpy(out, p, n);  // empty arrays have a null data()
    p += n;
    left -= n;
  }
  std::uint8_t u8() { std::uint8_t v; take(&v, 1); return v; }
  std::uint32_t u32() { std::uint32_t v; take(&v, 4); return v; }
  std::int32_t i32() { std::int32_t v; take(&v, 4); return v; }
  std::uint64_t u64() { std::uint64_t v; take(&v, 8); return v; }

  /// Reads a length-prefixed array of `elem_size`-byte elements, rejecting
  /// counts that do not fit the remaining payload *before* allocating.
  template <typename T>
  std::vector<T> array(std::size_t elem_size) {
    const std::uint64_t n = u64();
    if (n > left / elem_size) fail_corrupt(path, "array length exceeds payload");
    std::vector<T> out(static_cast<std::size_t>(n));
    take(out.data(), static_cast<std::size_t>(n) * elem_size);
    return out;
  }

  FlatBitset bitset() {
    const std::uint64_t nbits = u64();
    const std::uint64_t nwords = u64();
    if (nwords > left / sizeof(std::uint64_t))
      fail_corrupt(path, "bitset length exceeds payload");
    std::vector<std::uint64_t> words(static_cast<std::size_t>(nwords));
    take(words.data(), words.size() * sizeof(std::uint64_t));
    FlatBitset out;
    if (!FlatBitset::from_words(static_cast<std::size_t>(nbits), std::move(words), &out))
      fail_corrupt(path, "bitset word count / tail bits inconsistent");
    return out;
  }
};

// ---- file I/O helpers ----

void write_all_fd(int fd, const char* p, std::size_t n, const std::string& what) {
  std::size_t cap = n;
  if (const int err = util::fault_errno("snapshot.save.write", &cap)) {
    errno = err;
    fail_io(what, err);
  }
  const bool short_write = cap < n;
  std::size_t target = short_write ? cap : n;
  while (target > 0) {
    const ssize_t w = ::write(fd, p, target);
    if (w < 0) {
      if (errno == EINTR) continue;
      fail_io(what, errno);
    }
    p += w;
    target -= static_cast<std::size_t>(w);
  }
  if (short_write) fail_io(what + " (short write)", 5 /* EIO */);
}

std::string read_file(const std::string& path) {
  if (const int err = util::fault_errno("snapshot.load.read"))
    fail_io("snapshot: read " + path, err);
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) fail_io("snapshot: open " + path, errno);
  std::string out;
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      fail_io("snapshot: read " + path, err);
    }
    if (n == 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

void fsync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int dfd = ::open(dir.empty() ? "/" : dir.c_str(), O_RDONLY | O_CLOEXEC);
  if (dfd < 0) return;  // best effort: not all filesystems allow dir fsync
  ::fsync(dfd);
  ::close(dfd);
}

}  // namespace

void save_snapshot(const FlatSnapshot& snap, const std::string& path) {
  require(!path.empty(), ErrorCode::kInvalidArgument, "save_snapshot: empty path");

  // ---- serialize the frozen core ----
  std::string payload;
  put_u8(payload, snap.has_middleboxes_ ? 1 : 0);
  put_u8(payload, snap.tracks_visits() ? 1 : 0);
  put_u64(payload, snap.atom_capacity_);

  put_u64(payload, snap.bdd_nodes_.size());
  put_bytes(payload, snap.bdd_nodes_.data(),
            snap.bdd_nodes_.size() * sizeof(bdd::FlatBddNode));

  put_u64(payload, snap.tree_.size());
  put_bytes(payload, snap.tree_.data(),
            snap.tree_.size() * sizeof(FlatTreeNode));
  put_i32(payload, snap.tree_root_);

  put_u64(payload, snap.boxes_.size());
  for (const FlatSnapshot::FlatBox& fb : snap.boxes_) {
    put_u64(payload, fb.ports.size());
    for (const FlatSnapshot::FlatPortEntry& e : fb.ports) {
      put_u32(payload, e.port);
      put_i32(payload, e.peer_box);
      put_u32(payload, e.peer_port);
      put_u8(payload, e.has_out_acl ? 1 : 0);
      put_bitset(payload, e.fwd_atoms);
      put_bitset(payload, e.out_acl_atoms);
    }
    put_u64(payload, fb.in_acls.size());
    for (const FlatSnapshot::FlatInAcl& a : fb.in_acls) {
      put_u8(payload, a.present ? 1 : 0);
      put_bitset(payload, a.atoms);
    }
  }

  std::string file;
  file.reserve(kFileHeaderBytes + payload.size());
  put_bytes(file, kMagic, sizeof(kMagic));
  put_u32(file, kVersion);
  put_u32(file, kEndianSentinel);
  put_u64(file, payload.size());
  put_u32(file, util::crc32c_mask(util::crc32c(payload.data(), payload.size())));
  file += payload;

  // ---- atomic write: tmp + fsync + rename + dir fsync ----
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) fail_io("snapshot: open " + tmp, errno);
  try {
    write_all_fd(fd, file.data(), file.size(), "snapshot: write " + tmp);
    if (const int err = util::fault_errno("snapshot.save.fsync"))
      fail_io("snapshot: fsync " + tmp, err);
    if (::fsync(fd) != 0) fail_io("snapshot: fsync " + tmp, errno);
  } catch (...) {
    ::close(fd);
    ::unlink(tmp.c_str());  // never leave a torn tmp behind
    throw;
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    fail_io("snapshot: close " + tmp, errno);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    fail_io("snapshot: rename " + tmp + " -> " + path, err);
  }
  fsync_parent_dir(path);
}

std::shared_ptr<const FlatSnapshot> load_snapshot(const std::string& path,
                                                  const FlatSnapshot::Options& opts) {
  const std::string file = read_file(path);
  if (file.size() < kFileHeaderBytes) fail_corrupt(path, "file shorter than header");
  if (std::memcmp(file.data(), kMagic, sizeof(kMagic)) != 0)
    fail_corrupt(path, "bad magic");

  Reader hdr{file.data() + sizeof(kMagic), file.size() - sizeof(kMagic), path};
  const std::uint32_t version = hdr.u32();
  if (version != kVersion) fail_corrupt(path, "unsupported version");
  if (hdr.u32() != kEndianSentinel) fail_corrupt(path, "endianness mismatch");
  const std::uint64_t payload_len = hdr.u64();
  const std::uint32_t stored_crc = util::crc32c_unmask(hdr.u32());
  if (payload_len != hdr.left) fail_corrupt(path, "payload length mismatch");
  if (util::crc32c(hdr.p, hdr.left) != stored_crc) fail_corrupt(path, "checksum mismatch");

  Reader r{hdr.p, hdr.left, path};
  auto snap = std::shared_ptr<FlatSnapshot>(new FlatSnapshot());
  snap->has_middleboxes_ = r.u8() != 0;
  const bool tracks_visits = r.u8() != 0;
  snap->atom_capacity_ = static_cast<std::size_t>(r.u64());

  snap->bdd_nodes_ = r.array<bdd::FlatBddNode>(sizeof(bdd::FlatBddNode));
  snap->tree_ = r.array<FlatTreeNode>(sizeof(FlatTreeNode));
  snap->tree_root_ = r.i32();

  const std::uint64_t box_count = r.u64();
  if (box_count > r.left) fail_corrupt(path, "box count exceeds payload");
  snap->boxes_.resize(static_cast<std::size_t>(box_count));
  for (FlatSnapshot::FlatBox& fb : snap->boxes_) {
    const std::uint64_t ports = r.u64();
    if (ports > r.left) fail_corrupt(path, "port count exceeds payload");
    fb.ports.resize(static_cast<std::size_t>(ports));
    for (FlatSnapshot::FlatPortEntry& e : fb.ports) {
      e.port = r.u32();
      e.peer_box = r.i32();
      e.peer_port = r.u32();
      e.has_out_acl = r.u8() != 0;
      e.fwd_atoms = r.bitset();
      e.out_acl_atoms = r.bitset();
    }
    const std::uint64_t acls = r.u64();
    if (acls > r.left) fail_corrupt(path, "ACL count exceeds payload");
    fb.in_acls.resize(static_cast<std::size_t>(acls));
    for (FlatSnapshot::FlatInAcl& a : fb.in_acls) {
      a.present = r.u8() != 0;
      a.atoms = r.bitset();
    }
  }
  if (r.left != 0) fail_corrupt(path, "trailing bytes after payload");

  // ---- structural validation: adversarial indices must not walk out of
  // bounds or loop forever ----
  const std::size_t nb = snap->bdd_nodes_.size();
  if (nb < 2) fail_corrupt(path, "missing BDD terminals");
  for (std::size_t i = 2; i < nb; ++i) {
    const bdd::FlatBddNode& n = snap->bdd_nodes_[i];
    if (n.lo >= nb || n.hi >= nb) fail_corrupt(path, "BDD child out of range");
    if (n.var >= PacketHeader::kMaxBits) fail_corrupt(path, "BDD variable out of range");
    // ROBDD invariant: variables strictly increase toward the terminals —
    // also the termination guarantee for the eval walk.
    if (n.lo > bdd::kTrue && snap->bdd_nodes_[n.lo].var <= n.var)
      fail_corrupt(path, "BDD variable order violated");
    if (n.hi > bdd::kTrue && snap->bdd_nodes_[n.hi].var <= n.var)
      fail_corrupt(path, "BDD variable order violated");
  }
  const std::size_t nt = snap->tree_.size();
  if (nt == 0 || snap->tree_root_ != 0) fail_corrupt(path, "bad tree root");
  for (std::size_t i = 0; i < nt; ++i) {
    const FlatTreeNode& t = snap->tree_[i];
    if (t.right == kLeaf) {
      if (t.bdd_root >= snap->atom_capacity_)
        fail_corrupt(path, "leaf atom out of range");
    } else {
      if (t.bdd_root >= nb) fail_corrupt(path, "tree predicate out of range");
      // DFS preorder: both children sit strictly after the node (true child
      // is i+1), so every walk makes forward progress and terminates.
      if (t.right <= static_cast<std::int32_t>(i) ||
          t.right >= static_cast<std::int32_t>(nt))
        fail_corrupt(path, "tree edge not DFS-forward");
    }
  }
  for (const FlatSnapshot::FlatBox& fb : snap->boxes_) {
    for (const FlatSnapshot::FlatPortEntry& e : fb.ports) {
      if (e.peer_box >= static_cast<std::int32_t>(snap->boxes_.size()) ||
          e.peer_box < -1)
        fail_corrupt(path, "peer box out of range");
    }
  }

  if (tracks_visits) snap->visits_.reset(snap->atom_capacity_);
  snap->init_accelerators(opts);
  return snap;
}

}  // namespace apc::engine
