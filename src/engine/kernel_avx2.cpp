// AVX2 lane-parallel match-program executor: 16 headers advance one
// instruction per step (see program.hpp for the instruction set), organized
// as two independent 8-lane vector groups.
//
// Per group and step, with one 32-bit program counter per lane:
//   1. gather the four instruction dwords of each lane's pc (vpgatherdd on
//      the instruction array — 16-byte instructions are 4 consecutive
//      dwords at pc*4),
//   2. decode each lane's header-word index from its jump dword and gather
//      that word from the header array (PacketHeader is exactly
//      kWords32 contiguous little-endian dwords, statically asserted),
//   3. compare-under-mask, and blend each lane's pc to on_match/on_fail.
// A step is a dependent chain of two gathers (~instruction, then header
// word), so a single 8-lane group is latency-bound; the two groups share no
// data and the out-of-order core keeps both chains in flight, roughly
// doubling throughput even when the program is L1-resident.
//
// A lane whose pc carries the leaf bit (sign bit, so one movemask over the
// pc vector finds them) retires its atom and admits the next pending
// header — the same refill discipline as the interpreted lockstep walk, so
// short walks never stall long ones.
//
// Gathers are masked by the per-lane active state: retired/dead lanes keep
// a leaf-tagged pc whose sign bit switches their loads off, so the kernel
// never reads program or header memory for a lane it is not running.
//
// This file is the only translation unit compiled with -mavx2; program.cpp
// dispatches into it after a runtime CPUID check (avx2_available), so the
// library still runs on pre-AVX2 x86 machines.
#include <immintrin.h>

#include <type_traits>

#include "engine/program.hpp"
#include "util/error.hpp"

namespace apc::engine {

bool MatchProgram::avx2_available() {
  static const bool ok = __builtin_cpu_supports("avx2") != 0;
  return ok;
}

void MatchProgram::run_batch_avx2(const PacketHeader* hs,
                                  const std::size_t* which, std::size_t n,
                                  AtomId* out) const {
  // The header gather reads the header array as a flat dword array: lane
  // base = slot * kWords32.  Both casts below feed only gather intrinsics
  // (whole-dword loads of trivially-copyable storage), never typed lvalue
  // access.
  static_assert(sizeof(PacketHeader) ==
                    sizeof(std::uint32_t) * PacketHeader::kWords32,
                "header must be exactly kWords32 packed dwords");
  static_assert(std::is_trivially_copyable_v<PacketHeader>);
  require(n <= std::size_t{0x7FFFFFFF} / PacketHeader::kWords32,
          "run_batch_avx2: batch too large for 32-bit gather indices");
  const int* prog = reinterpret_cast<const int*>(code_);
  const int* hdr = reinterpret_cast<const int*>(hs);

  constexpr int kGroupLanes = 8;
  constexpr int kGroups = 2;
  constexpr int kLanes = kGroupLanes * kGroups;
  alignas(32) std::uint32_t pcs[kLanes];
  alignas(32) std::uint32_t bases[kLanes];
  std::size_t slots[kLanes];
  std::size_t next = 0;
  unsigned live[kGroups] = {0, 0};  // per-group bitmask of unretired lanes

  const auto admit = [&](int l) {
    if (next >= n) return false;
    const std::size_t slot = which ? which[next] : next;
    ++next;
    slots[l] = slot;
    bases[l] = static_cast<std::uint32_t>(slot * PacketHeader::kWords32);
    pcs[l] = entry_;
    return true;
  };
  for (int l = 0; l < kLanes; ++l) {
    if (admit(l))
      live[l / kGroupLanes] |= 1u << (l % kGroupLanes);
    else {
      pcs[l] = kLeafBit;  // dead lane: sign bit masks its gathers off
      bases[l] = 0;
    }
  }
  if ((live[0] | live[1]) == 0) return;

  const __m256i vzero = _mm256_setzero_si256();
  const __m256i vones = _mm256_set1_epi32(-1);
  const __m256i vtarget = _mm256_set1_epi32(static_cast<int>(kTargetMask));
  const __m256i vwordmask = _mm256_set1_epi32(static_cast<int>(kWordFieldMask));
  __m256i pc[kGroups], base[kGroups];
  for (int g = 0; g < kGroups; ++g) {
    pc[g] = _mm256_load_si256(
        reinterpret_cast<const __m256i*>(pcs + g * kGroupLanes));
    base[g] = _mm256_load_si256(
        reinterpret_cast<const __m256i*>(bases + g * kGroupLanes));
  }

  for (;;) {
    // Leaf bit == sign bit: one movemask per group finds every lane due to
    // retire.
    unsigned done[kGroups];
    unsigned any_done = 0;
    for (int g = 0; g < kGroups; ++g) {
      done[g] = static_cast<unsigned>(
                    _mm256_movemask_ps(_mm256_castsi256_ps(pc[g]))) &
                live[g];
      any_done |= done[g];
    }
    if (any_done != 0) {
      for (int g = 0; g < kGroups; ++g) {
        if (done[g] == 0) continue;
        _mm256_store_si256(reinterpret_cast<__m256i*>(pcs + g * kGroupLanes),
                           pc[g]);
        unsigned pending = done[g];
        while (pending != 0) {
          const int l = __builtin_ctz(pending);
          pending &= pending - 1;
          const int lane = g * kGroupLanes + l;
          out[slots[lane]] = static_cast<AtomId>(pcs[lane] & kTargetMask);
          if (!admit(lane)) {
            live[g] &= ~(1u << l);
            pcs[lane] = kLeafBit;
          }
        }
        pc[g] = _mm256_load_si256(
            reinterpret_cast<const __m256i*>(pcs + g * kGroupLanes));
        base[g] = _mm256_load_si256(
            reinterpret_cast<const __m256i*>(bases + g * kGroupLanes));
      }
      if ((live[0] | live[1]) == 0) return;
      continue;  // a refilled entry may itself be a leaf (single-leaf tree)
    }

    // All live lanes are mid-walk here; dead lanes (leaf-tagged pc, sign
    // set) get a zero gather mask and keep their pc through the final blend.
    // The two group bodies are fully independent — both gather chains
    // overlap in the out-of-order window.
    for (int g = 0; g < kGroups; ++g) {
      const __m256i active =
          _mm256_xor_si256(_mm256_srai_epi32(pc[g], 31), vones);
      const __m256i idx = _mm256_slli_epi32(_mm256_and_si256(pc[g], vtarget), 2);
      const __m256i m =
          _mm256_mask_i32gather_epi32(vzero, prog, idx, active, 4);
      const __m256i v = _mm256_mask_i32gather_epi32(
          vzero, prog, _mm256_add_epi32(idx, _mm256_set1_epi32(1)), active, 4);
      const __m256i jm = _mm256_mask_i32gather_epi32(
          vzero, prog, _mm256_add_epi32(idx, _mm256_set1_epi32(2)), active, 4);
      const __m256i jf = _mm256_mask_i32gather_epi32(
          vzero, prog, _mm256_add_epi32(idx, _mm256_set1_epi32(3)), active, 4);
      const __m256i word =
          _mm256_and_si256(_mm256_srli_epi32(jm, kWordShift), vwordmask);
      const __m256i wv = _mm256_mask_i32gather_epi32(
          vzero, hdr, _mm256_add_epi32(base[g], word), active, 4);
      const __m256i eq = _mm256_cmpeq_epi32(_mm256_and_si256(wv, m), v);
      const __m256i nextpc = _mm256_blendv_epi8(jf, jm, eq);
      pc[g] = _mm256_blendv_epi8(pc[g], nextpc, active);
    }
  }
}

}  // namespace apc::engine
