// A small persistent worker pool for fanning batch queries across threads.
//
// One job runs at a time (callers of parallel_for take turns); within a job,
// workers and the calling thread claim fixed-size chunks of the index range
// from a shared atomic cursor, so load balances even when per-item cost
// varies (deep vs. shallow tree paths).  Threads are started once and parked
// on a condition variable between jobs — batch dispatch costs two lock
// acquisitions, not a thread spawn.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace apc::engine {

class WorkerPool {
 public:
  /// Starts `threads` workers.  0 is valid: parallel_for then runs inline on
  /// the calling thread (useful for deterministic tests).
  explicit WorkerPool(std::size_t threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Invokes fn(first, last) over disjoint chunks covering [0, total).
  /// Blocks until every chunk has completed.  The calling thread
  /// participates, so throughput scales to thread_count() + 1 claimants.
  /// Safe to call from several threads (calls serialize on an internal
  /// mutex); `fn` must itself be safe to invoke concurrently.
  void parallel_for(std::size_t total, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  struct Job {
    std::size_t total = 0;
    std::size_t grain = 1;
    std::size_t chunk_count = 0;
    const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
    std::atomic<std::size_t> next_chunk{0};
    std::atomic<std::size_t> done_chunks{0};
  };

  void worker_loop();
  void run_chunks(Job& job);

  std::vector<std::thread> workers_;
  std::mutex mu_;                  // guards job_/job_seq_/stop_
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::mutex job_mu_;              // serializes parallel_for callers
  std::shared_ptr<Job> job_;
  std::uint64_t job_seq_ = 0;
  bool stop_ = false;
};

}  // namespace apc::engine
