#include "packet/header.hpp"

#include <sstream>

#include "packet/ipv4.hpp"

namespace apc {

HeaderLayout::HeaderLayout(std::vector<HeaderField> fields) : fields_(std::move(fields)) {
  std::uint32_t expect = 0;
  for (const auto& f : fields_) {
    require(f.offset == expect, "HeaderLayout: fields must be contiguous");
    require(f.width > 0 && f.width <= 64, "HeaderLayout: bad field width");
    expect += f.width;
  }
  num_bits_ = expect;
  require(num_bits_ > 0 && num_bits_ <= PacketHeader::kMaxBits, "HeaderLayout: header exceeds PacketHeader capacity");
}

HeaderLayout HeaderLayout::five_tuple() {
  return HeaderLayout({{"dst_ip", kDstIp, 32},
                       {"src_ip", kSrcIp, 32},
                       {"dst_port", kDstPort, 16},
                       {"src_port", kSrcPort, 16},
                       {"proto", kProto, 8}});
}

const HeaderField& HeaderLayout::field(const std::string& name) const {
  for (const auto& f : fields_)
    if (f.name == name) return f;
  throw Error("HeaderLayout: unknown field " + name);
}

void PacketHeader::set_field(std::uint32_t offset, std::uint32_t width,
                             std::uint64_t value) {
  require(offset + width <= kMaxBits, "PacketHeader::set_field out of range");
  for (std::uint32_t i = 0; i < width; ++i) {
    const bool bit = (value >> (width - 1 - i)) & 1;
    set_bit(offset + i, bit);
  }
}

std::uint64_t PacketHeader::field(std::uint32_t offset, std::uint32_t width) const {
  require(offset + width <= kMaxBits, "PacketHeader::field out of range");
  std::uint64_t v = 0;
  for (std::uint32_t i = 0; i < width; ++i) {
    v = (v << 1) | static_cast<std::uint64_t>(bit(offset + i));
  }
  return v;
}

PacketHeader PacketHeader::from_five_tuple(std::uint32_t src_ip, std::uint32_t dst_ip,
                                           std::uint16_t src_port,
                                           std::uint16_t dst_port, std::uint8_t proto) {
  PacketHeader h;
  h.set_src_ip(src_ip);
  h.set_dst_ip(dst_ip);
  h.set_src_port(src_port);
  h.set_dst_port(dst_port);
  h.set_proto(proto);
  return h;
}

PacketHeader PacketHeader::from_bits(const std::vector<std::uint8_t>& bits) {
  require(bits.size() <= kMaxBits, "PacketHeader::from_bits too many bits");
  PacketHeader h;
  for (std::uint32_t i = 0; i < bits.size(); ++i) h.set_bit(i, bits[i] != 0);
  return h;
}

std::string PacketHeader::to_string() const {
  std::ostringstream os;
  os << format_ipv4(src_ip()) << ":" << src_port() << " -> " << format_ipv4(dst_ip())
     << ":" << dst_port() << " proto=" << static_cast<int>(proto());
  return os.str();
}

}  // namespace apc
