// Packet header model.
//
// The paper evaluates predicates over a fixed-size header containing every
// field that forwarding tables and ACLs inspect.  We use the classic 5-tuple
// layout (104 bits).  BDD variable i is header bit i; fields are laid out
// MSB-first with the destination IP first, since it is the dominant filter
// field and an early position shortens predicate BDD paths.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace apc {

/// A named bit-field inside the header.
struct HeaderField {
  std::string name;
  std::uint32_t offset;  ///< first bit (BDD variable index)
  std::uint32_t width;   ///< in bits, MSB first
};

/// Describes the header bit layout shared by a whole network model.
class HeaderLayout {
 public:
  /// Standard 5-tuple: dst_ip(32) | src_ip(32) | dst_port(16) | src_port(16)
  /// | proto(8) = 104 bits.
  static HeaderLayout five_tuple();

  /// Custom layout from an ordered field list.
  explicit HeaderLayout(std::vector<HeaderField> fields);

  std::uint32_t num_bits() const { return num_bits_; }
  const std::vector<HeaderField>& fields() const { return fields_; }
  const HeaderField& field(const std::string& name) const;

  // Offsets of the standard fields (valid for five_tuple()).
  static constexpr std::uint32_t kDstIp = 0;
  static constexpr std::uint32_t kSrcIp = 32;
  static constexpr std::uint32_t kDstPort = 64;
  static constexpr std::uint32_t kSrcPort = 80;
  static constexpr std::uint32_t kProto = 96;
  static constexpr std::uint32_t kBits = 104;

 private:
  std::vector<HeaderField> fields_;
  std::uint32_t num_bits_ = 0;
};

/// A concrete packet header: a fixed bit vector (up to kMaxBits bits —
/// enough for an IPv6 five-tuple).  bit(i) is the value of BDD variable i.
class PacketHeader {
 public:
  static constexpr std::uint32_t kWords = 5;
  static constexpr std::uint32_t kMaxBits = kWords * 64;  // 320

  PacketHeader() = default;

  bool bit(std::uint32_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1;
  }
  void set_bit(std::uint32_t i, bool v) {
    const std::uint64_t m = std::uint64_t{1} << (i & 63);
    if (v)
      words_[i >> 6] |= m;
    else
      words_[i >> 6] &= ~m;
  }

  /// Writes `value`'s low `width` bits into [offset, offset+width) MSB-first.
  void set_field(std::uint32_t offset, std::uint32_t width, std::uint64_t value);
  /// Reads the `width`-bit field at `offset` (MSB-first).
  std::uint64_t field(std::uint32_t offset, std::uint32_t width) const;

  // Convenience accessors for the five-tuple layout.
  std::uint32_t dst_ip() const {
    return static_cast<std::uint32_t>(field(HeaderLayout::kDstIp, 32));
  }
  std::uint32_t src_ip() const {
    return static_cast<std::uint32_t>(field(HeaderLayout::kSrcIp, 32));
  }
  std::uint16_t dst_port() const {
    return static_cast<std::uint16_t>(field(HeaderLayout::kDstPort, 16));
  }
  std::uint16_t src_port() const {
    return static_cast<std::uint16_t>(field(HeaderLayout::kSrcPort, 16));
  }
  std::uint8_t proto() const {
    return static_cast<std::uint8_t>(field(HeaderLayout::kProto, 8));
  }

  void set_dst_ip(std::uint32_t v) { set_field(HeaderLayout::kDstIp, 32, v); }
  void set_src_ip(std::uint32_t v) { set_field(HeaderLayout::kSrcIp, 32, v); }
  void set_dst_port(std::uint16_t v) { set_field(HeaderLayout::kDstPort, 16, v); }
  void set_src_port(std::uint16_t v) { set_field(HeaderLayout::kSrcPort, 16, v); }
  void set_proto(std::uint8_t v) { set_field(HeaderLayout::kProto, 8, v); }

  /// Builds a header from a five-tuple.
  static PacketHeader from_five_tuple(std::uint32_t src_ip, std::uint32_t dst_ip,
                                      std::uint16_t src_port, std::uint16_t dst_port,
                                      std::uint8_t proto);

  /// Builds a header from a per-variable assignment (e.g. bdd::any_sat).
  static PacketHeader from_bits(const std::vector<std::uint8_t>& bits);

  bool operator==(const PacketHeader& other) const { return words_ == other.words_; }

  /// Raw 64-bit backing words (bit i of the header is bit i%64 of word
  /// i/64).  The engine's header cache canonicalizes and hashes these.
  const std::array<std::uint64_t, kWords>& words() const { return words_; }

  // ---- Packed 32-bit word view ----
  // The match-program compiler coalesces BDD bit-tests per 32-bit word and
  // its SIMD kernel gathers one 32-bit word per lane per step, so both need
  // the header as an array of kWords32 contiguous 32-bit words: bit j of
  // word32(w) is header bit 32*w + j (same LSB-first convention as bit()).
  // On a little-endian target word32(w) is exactly the w-th 32-bit word of
  // the in-memory representation, which is what the gather path reads.
  static constexpr std::uint32_t kWords32 = kWords * 2;
  std::uint32_t word32(std::uint32_t w) const {
    return static_cast<std::uint32_t>(words_[w >> 1] >> ((w & 1u) * 32u));
  }
  std::array<std::uint32_t, kWords32> words32() const {
    std::array<std::uint32_t, kWords32> out;
    for (std::uint32_t w = 0; w < kWords32; ++w) out[w] = word32(w);
    return out;
  }

  std::string to_string() const;  ///< "src -> dst proto/sport/dport"

 private:
  std::array<std::uint64_t, kWords> words_{};
};

}  // namespace apc
