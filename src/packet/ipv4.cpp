#include "packet/ipv4.hpp"

#include <charconv>
#include <sstream>

#include "util/error.hpp"

namespace apc {

namespace {
std::uint32_t parse_u32(std::string_view s, std::uint32_t max, const char* what) {
  std::uint32_t v = 0;
  const auto* begin = s.data();
  const auto* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(begin, end, v);
  require(ec == std::errc{} && ptr == end && v <= max, what);
  return v;
}
}  // namespace

std::uint32_t parse_ipv4(std::string_view s) {
  std::uint32_t out = 0;
  int octets = 0;
  while (octets < 4) {
    const std::size_t dot = s.find('.');
    const std::string_view part = octets == 3 ? s : s.substr(0, dot);
    require(octets == 3 || dot != std::string_view::npos, "parse_ipv4: malformed address");
    require(!part.empty(), "parse_ipv4: empty octet");
    out = (out << 8) | parse_u32(part, 255, "parse_ipv4: octet out of range");
    if (octets < 3) s.remove_prefix(dot + 1);
    ++octets;
  }
  return out;
}

Ipv4Prefix parse_prefix(std::string_view s) {
  const std::size_t slash = s.find('/');
  Ipv4Prefix p;
  if (slash == std::string_view::npos) {
    p.addr = parse_ipv4(s);
    p.len = 32;
  } else {
    p.addr = parse_ipv4(s.substr(0, slash));
    p.len = static_cast<std::uint8_t>(
        parse_u32(s.substr(slash + 1), 32, "parse_prefix: bad length"));
  }
  return p.normalized();
}

std::string format_ipv4(std::uint32_t addr) {
  std::ostringstream os;
  os << ((addr >> 24) & 255) << '.' << ((addr >> 16) & 255) << '.' << ((addr >> 8) & 255)
     << '.' << (addr & 255);
  return os.str();
}

std::string format_prefix(const Ipv4Prefix& p) {
  return format_ipv4(p.addr) + "/" + std::to_string(p.len);
}

}  // namespace apc
