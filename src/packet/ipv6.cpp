#include "packet/ipv6.hpp"

#include <sstream>

#include "packet/ipv4.hpp"
#include "util/error.hpp"

namespace apc {

std::uint64_t Ipv6Addr::hi() const {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | bytes[i];
  return v;
}

std::uint64_t Ipv6Addr::lo() const {
  std::uint64_t v = 0;
  for (int i = 8; i < 16; ++i) v = (v << 8) | bytes[i];
  return v;
}

Ipv6Addr Ipv6Addr::from_words(std::uint64_t hi, std::uint64_t lo) {
  Ipv6Addr a;
  for (int i = 0; i < 8; ++i) a.bytes[i] = static_cast<std::uint8_t>(hi >> (56 - 8 * i));
  for (int i = 0; i < 8; ++i)
    a.bytes[8 + i] = static_cast<std::uint8_t>(lo >> (56 - 8 * i));
  return a;
}

namespace {

std::uint16_t parse_group(std::string_view g) {
  require(!g.empty() && g.size() <= 4, "parse_ipv6: bad group length");
  std::uint16_t v = 0;
  for (const char c : g) {
    std::uint16_t d;
    if (c >= '0' && c <= '9') d = static_cast<std::uint16_t>(c - '0');
    else if (c >= 'a' && c <= 'f') d = static_cast<std::uint16_t>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F') d = static_cast<std::uint16_t>(c - 'A' + 10);
    else throw Error("parse_ipv6: bad hex digit");
    v = static_cast<std::uint16_t>((v << 4) | d);
  }
  return v;
}

std::vector<std::string_view> split_colons(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(':', start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

}  // namespace

Ipv6Addr parse_ipv6(std::string_view s) {
  require(!s.empty(), "parse_ipv6: empty address");

  // Locate the (at most one) "::".
  const std::size_t dc = s.find("::");
  require(dc == std::string_view::npos || s.find("::", dc + 1) == std::string_view::npos,
          "parse_ipv6: more than one ::");

  std::string_view left_s = dc == std::string_view::npos ? s : s.substr(0, dc);
  std::string_view right_s = dc == std::string_view::npos
                                 ? std::string_view{}
                                 : s.substr(dc + 2);

  const auto parse_side = [](std::string_view side) {
    std::vector<std::uint16_t> groups;
    if (side.empty()) return groups;
    const auto toks = split_colons(side);
    for (std::size_t i = 0; i < toks.size(); ++i) {
      // Embedded IPv4 must be the final token.
      if (toks[i].find('.') != std::string_view::npos) {
        require(i + 1 == toks.size(), "parse_ipv6: embedded IPv4 not at the end");
        const std::uint32_t v4 = parse_ipv4(toks[i]);
        groups.push_back(static_cast<std::uint16_t>(v4 >> 16));
        groups.push_back(static_cast<std::uint16_t>(v4 & 0xFFFF));
      } else {
        groups.push_back(parse_group(toks[i]));
      }
    }
    return groups;
  };

  const std::vector<std::uint16_t> left = parse_side(left_s);
  const std::vector<std::uint16_t> right = parse_side(right_s);

  std::vector<std::uint16_t> groups;
  if (dc == std::string_view::npos) {
    groups = left;
    require(groups.size() == 8, "parse_ipv6: expected 8 groups");
  } else {
    require(left.size() + right.size() <= 7, "parse_ipv6: :: expands to nothing");
    groups = left;
    groups.insert(groups.end(), 8 - left.size() - right.size(), 0);
    groups.insert(groups.end(), right.begin(), right.end());
  }

  Ipv6Addr a;
  for (int i = 0; i < 8; ++i) {
    a.bytes[2 * i] = static_cast<std::uint8_t>(groups[i] >> 8);
    a.bytes[2 * i + 1] = static_cast<std::uint8_t>(groups[i] & 0xFF);
  }
  return a;
}

std::string format_ipv6(const Ipv6Addr& a) {
  std::array<std::uint16_t, 8> groups;
  for (int i = 0; i < 8; ++i)
    groups[i] = static_cast<std::uint16_t>((a.bytes[2 * i] << 8) | a.bytes[2 * i + 1]);

  // Longest run of >= 2 zero groups (RFC 5952: leftmost on ties).
  int best_start = -1, best_len = 0;
  for (int i = 0; i < 8;) {
    if (groups[i] != 0) {
      ++i;
      continue;
    }
    int j = i;
    while (j < 8 && groups[j] == 0) ++j;
    if (j - i > best_len) {
      best_start = i;
      best_len = j - i;
    }
    i = j;
  }
  if (best_len < 2) best_start = -1;

  std::ostringstream os;
  os << std::hex << std::nouppercase;
  int i = 0;
  while (i < 8) {
    if (i == best_start) {
      os << "::";
      i += best_len;
      continue;
    }
    os << groups[i];
    ++i;
    if (i < 8 && i != best_start) os << ":";
  }
  return os.str();
}

bool Ipv6Prefix::contains(const Ipv6Addr& a) const {
  std::uint8_t remaining = len;
  for (int i = 0; i < 16 && remaining > 0; ++i) {
    const std::uint8_t take = remaining >= 8 ? 8 : remaining;
    const std::uint8_t mask = static_cast<std::uint8_t>(0xFF << (8 - take));
    if ((addr.bytes[i] & mask) != (a.bytes[i] & mask)) return false;
    remaining = static_cast<std::uint8_t>(remaining - take);
  }
  return true;
}

Ipv6Prefix Ipv6Prefix::normalized() const {
  Ipv6Prefix p = *this;
  std::uint8_t remaining = len;
  for (int i = 0; i < 16; ++i) {
    if (remaining >= 8) {
      remaining = static_cast<std::uint8_t>(remaining - 8);
    } else {
      const std::uint8_t mask = static_cast<std::uint8_t>(0xFF << (8 - remaining));
      p.addr.bytes[i] &= mask;
      remaining = 0;
    }
  }
  return p;
}

Ipv6Prefix parse_ipv6_prefix(std::string_view s) {
  const std::size_t slash = s.find('/');
  Ipv6Prefix p;
  if (slash == std::string_view::npos) {
    p.addr = parse_ipv6(s);
    p.len = 128;
  } else {
    p.addr = parse_ipv6(s.substr(0, slash));
    const std::string_view len_s = s.substr(slash + 1);
    require(!len_s.empty() && len_s.size() <= 3, "parse_ipv6_prefix: bad length");
    int v = 0;
    for (const char c : len_s) {
      require(c >= '0' && c <= '9', "parse_ipv6_prefix: bad length");
      v = v * 10 + (c - '0');
    }
    require(v <= 128, "parse_ipv6_prefix: length > 128");
    p.len = static_cast<std::uint8_t>(v);
  }
  return p.normalized();
}

std::string format_ipv6_prefix(const Ipv6Prefix& p) {
  return format_ipv6(p.addr) + "/" + std::to_string(p.len);
}

HeaderLayout Ipv6Layout::layout() {
  return HeaderLayout({{"dst_ip6", kDst, 64},
                       {"dst_ip6_lo", kDst + 64, 64},
                       {"src_ip6", kSrc, 64},
                       {"src_ip6_lo", kSrc + 64, 64},
                       {"dst_port", kDstPort, 16},
                       {"src_port", kSrcPort, 16},
                       {"proto", kProto, 8}});
}

PacketHeader ipv6_header(const Ipv6Addr& src, const Ipv6Addr& dst,
                         std::uint16_t src_port, std::uint16_t dst_port,
                         std::uint8_t proto) {
  PacketHeader h;
  h.set_field(Ipv6Layout::kDst, 64, dst.hi());
  h.set_field(Ipv6Layout::kDst + 64, 64, dst.lo());
  h.set_field(Ipv6Layout::kSrc, 64, src.hi());
  h.set_field(Ipv6Layout::kSrc + 64, 64, src.lo());
  h.set_field(Ipv6Layout::kDstPort, 16, dst_port);
  h.set_field(Ipv6Layout::kSrcPort, 16, src_port);
  h.set_field(Ipv6Layout::kProto, 8, proto);
  return h;
}

namespace {
std::vector<FieldMatch> ipv6_prefix_match(std::uint32_t base, const Ipv6Prefix& p) {
  std::vector<FieldMatch> out;
  const Ipv6Prefix n = p.normalized();
  FieldMatch hi;
  hi.offset = base;
  hi.width = 64;
  hi.kind = FieldMatch::Kind::Prefix;
  hi.value = n.addr.hi();
  hi.prefix_len = std::min<std::uint32_t>(n.len, 64);
  if (hi.prefix_len > 0) out.push_back(hi);
  if (n.len > 64) {
    FieldMatch lo;
    lo.offset = base + 64;
    lo.width = 64;
    lo.kind = FieldMatch::Kind::Prefix;
    lo.value = n.addr.lo();
    lo.prefix_len = n.len - 64;
    out.push_back(lo);
  }
  return out;
}
}  // namespace

std::vector<FieldMatch> ipv6_dst_match(const Ipv6Prefix& p) {
  return ipv6_prefix_match(Ipv6Layout::kDst, p);
}

std::vector<FieldMatch> ipv6_src_match(const Ipv6Prefix& p) {
  return ipv6_prefix_match(Ipv6Layout::kSrc, p);
}

}  // namespace apc
