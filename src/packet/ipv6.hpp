// IPv6 addresses, prefixes, and the IPv6 five-tuple header layout.
//
// The AP Classifier pipeline is field-agnostic (predicates are BDDs over
// header bits), so IPv6 support is a layout plus match helpers: the
// 296-bit five-tuple layout below, RFC 4291 address parsing with RFC 5952
// canonical formatting, and FieldMatch builders for OpenFlow-style flow
// tables (the forwarding state type used for IPv6 networks; the
// IPv4-specific Fib/Acl types are unaffected).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "packet/header.hpp"
#include "rules/flow_rule.hpp"

namespace apc {

/// An IPv6 address, network byte order.
struct Ipv6Addr {
  std::array<std::uint8_t, 16> bytes{};

  std::uint64_t hi() const;  ///< first 64 bits, MSB-first
  std::uint64_t lo() const;  ///< last 64 bits, MSB-first
  static Ipv6Addr from_words(std::uint64_t hi, std::uint64_t lo);

  bool operator==(const Ipv6Addr&) const = default;
};

/// Parses RFC 4291 text forms: full, "::"-compressed, and the embedded-IPv4
/// tail ("::ffff:192.0.2.1").  Throws apc::Error on malformed input.
Ipv6Addr parse_ipv6(std::string_view s);

/// RFC 5952 canonical form: lowercase hex, longest zero run compressed.
std::string format_ipv6(const Ipv6Addr& a);

/// An IPv6 prefix: top `len` bits of `addr` significant.
struct Ipv6Prefix {
  Ipv6Addr addr;
  std::uint8_t len = 0;

  bool contains(const Ipv6Addr& a) const;
  Ipv6Prefix normalized() const;  ///< host bits zeroed
  bool operator==(const Ipv6Prefix&) const = default;
};

/// Parses "addr/len" (bare address = /128).
Ipv6Prefix parse_ipv6_prefix(std::string_view s);
std::string format_ipv6_prefix(const Ipv6Prefix& p);

/// IPv6 five-tuple layout: dst(128) | src(128) | dst_port(16) | src_port(16)
/// | proto(8) = 296 bits.  Use a BddManager(kIpv6Bits) with it.
struct Ipv6Layout {
  static constexpr std::uint32_t kDst = 0;
  static constexpr std::uint32_t kSrc = 128;
  static constexpr std::uint32_t kDstPort = 256;
  static constexpr std::uint32_t kSrcPort = 272;
  static constexpr std::uint32_t kProto = 288;
  static constexpr std::uint32_t kBits = 296;

  static HeaderLayout layout();
};

/// Header for an IPv6 five-tuple.
PacketHeader ipv6_header(const Ipv6Addr& src, const Ipv6Addr& dst,
                         std::uint16_t src_port, std::uint16_t dst_port,
                         std::uint8_t proto);

/// Flow-rule matches for an IPv6 prefix on the dst/src field (one or two
/// FieldMatch entries, since a 128-bit prefix spans two 64-bit halves).
std::vector<FieldMatch> ipv6_dst_match(const Ipv6Prefix& p);
std::vector<FieldMatch> ipv6_src_match(const Ipv6Prefix& p);

}  // namespace apc
