// IPv4 address / prefix parsing and formatting.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace apc {

/// An IPv4 prefix: the top `len` bits of `addr` are significant.
struct Ipv4Prefix {
  std::uint32_t addr = 0;
  std::uint8_t len = 0;

  /// True iff `ip` falls inside this prefix.
  bool contains(std::uint32_t ip) const {
    if (len == 0) return true;
    const std::uint32_t mask = len >= 32 ? 0xFFFFFFFFu : ~(0xFFFFFFFFu >> len);
    return (ip & mask) == (addr & mask);
  }
  /// True iff `other` is fully inside this prefix.
  bool covers(const Ipv4Prefix& other) const {
    return other.len >= len && contains(other.addr);
  }
  /// Canonical form (host bits zeroed).
  Ipv4Prefix normalized() const {
    Ipv4Prefix p = *this;
    const std::uint32_t mask = len == 0 ? 0 : (len >= 32 ? 0xFFFFFFFFu : ~(0xFFFFFFFFu >> len));
    p.addr &= mask;
    return p;
  }
  bool operator==(const Ipv4Prefix& other) const {
    const Ipv4Prefix a = normalized(), b = other.normalized();
    return a.addr == b.addr && a.len == b.len;
  }
};

/// Parses "a.b.c.d"; throws apc::Error on malformed input.
std::uint32_t parse_ipv4(std::string_view s);
/// Parses "a.b.c.d/len" (or bare address = /32).
Ipv4Prefix parse_prefix(std::string_view s);

std::string format_ipv4(std::uint32_t addr);
std::string format_prefix(const Ipv4Prefix& p);

}  // namespace apc
